//! Load generator for the BSTC inference server: hammers `POST /classify`
//! from a fixed number of keep-alive connections and reports throughput
//! and the p50/p90/p99/max latency of complete request/response cycles.
//!
//! ```text
//! serve_bench [--addr HOST:PORT] [--requests N] [--concurrency C]
//!             [--batch B] [--seed S] [--scale K] [--json]
//!             [--max-batch N] [--batch-wait-us US] [--model NAME]
//!             [--overload | --compare-batching | --shadow-overhead
//!              | --idle-connections N]
//! ```
//!
//! `--json` additionally writes the measurements to `BENCH_serve.json`.
//!
//! Without `--addr` it is self-contained: it trains a bundle on synthetic
//! ALL/AML data, boots the server in-process on an ephemeral port, drives
//! the load, and shuts the server down — so `cargo run --release -p
//! bench-suite --bin serve_bench` measures an end-to-end stack with no
//! setup. With `--addr` it targets an already-running `bstc-cli serve`.
//!
//! Every run also scrapes `GET /metrics` at the end and embeds the
//! **server-side** `bstc_request_duration_us{route="/classify"}`
//! percentiles next to the client-measured ones. A closed-loop client
//! under-samples slow periods (coordinated omission: it cannot issue
//! requests while stuck waiting on one), so a client p99 far below the
//! server p99 is a measurement artifact — the report flags it.
//!
//! `--overload` (self-contained only) measures behavior *past* capacity:
//! the server boots with a deliberately tiny pool (2 workers, queue depth
//! 4) and the load uses one-shot `connection: close` requests so every
//! request passes through admission. The report then covers the shed rate,
//! that every 503 carried `Retry-After`, and how far saturation pushed the
//! p99 of the *accepted* requests versus an unloaded calibration run.
//!
//! `--compare-batching` (self-contained only) measures the model-pass
//! amortization win: the same steady load is driven twice, once against
//! a server with cross-connection micro-batching disabled (`max_batch
//! 0`) and once with it enabled, and the report carries both throughputs
//! plus their ratio (`batched_speedup`).
//!
//! `--model NAME` drives `POST /v1/models/NAME/classify` instead of the
//! legacy route — against an external fleet server, the name must be
//! registered there; self-contained, the synthetic bundle is registered
//! under NAME.
//!
//! `--idle-connections N` (self-contained only) is the event-loop soak:
//! it measures a no-idle baseline, parks N idle keep-alive connections,
//! then drives the same live load *through* the parked herd. The report
//! records the process thread count and RSS with the herd attached plus
//! the live p99 next to the baseline p99 — the claim under test is that
//! idle connections cost an fd and a parser state, not a thread, so the
//! run fails if the thread count grew with N or any parked connection
//! was dropped.
//!
//! `--shadow-overhead` (self-contained only) measures what shadow/canary
//! traffic costs the serving path: the same steady load is driven three
//! times against a two-model registry server shadowing `primary` onto
//! `candidate` at 0%, 10%, and 100% sampling, and the report carries the
//! client p99 at each rate plus the deltas over the 0% baseline. The
//! shadow replay is asynchronous (a dedicated thread fed by a bounded
//! drop-on-full queue), so the deltas measure enqueue + row-clone cost,
//! not candidate inference.

use serde::Serialize;
use serve::{serve, ModelBundle, Provenance, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The `--json` report written to `BENCH_serve.json`. Fields that only
/// one mode produces stay at zero in the others.
#[derive(Default, Serialize)]
struct Report {
    mode: String,
    requests: usize,
    concurrency: usize,
    batch: usize,
    elapsed_secs: f64,
    requests_per_sec: f64,
    samples_per_sec: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    accepted: usize,
    shed: usize,
    shed_rate: f64,
    unloaded_p99_ms: f64,
    saturated_over_unloaded_p99: f64,
    /// Server-side `bstc_request_duration_us{route="/classify"}` p50,
    /// scraped from `/metrics` at run end (0 when the scrape failed).
    server_p50_ms: f64,
    /// Server-side p99 — whole-request wall time as the *server* saw it.
    server_p99_ms: f64,
    /// Requests in the scraped server-side histogram (windowed: last
    /// 1–2 minutes).
    server_requests: u64,
    /// True when the client p99 sits far below the server p99: the
    /// closed-loop client under-sampled slow periods (coordinated
    /// omission), so trust the server percentiles over the client ones.
    coordinated_omission_skew: bool,
    /// `--compare-batching` only: samples/sec with `max_batch 0`.
    unbatched_samples_per_sec: f64,
    /// `--compare-batching` only: samples/sec with batching enabled.
    batched_samples_per_sec: f64,
    /// `--compare-batching` only: batched over unbatched throughput.
    batched_speedup: f64,
    /// `--shadow-overhead` only: client p99 with shadowing off.
    shadow_p99_ms_at_0: f64,
    /// `--shadow-overhead` only: client p99 at 10% shadow sampling.
    shadow_p99_ms_at_10: f64,
    /// `--shadow-overhead` only: client p99 at 100% shadow sampling.
    shadow_p99_ms_at_100: f64,
    /// `--shadow-overhead` only: p99 delta of 10% shadowing over the
    /// 0% baseline (negative values are run-to-run noise).
    shadow_p99_delta_10_ms: f64,
    /// `--shadow-overhead` only: p99 delta of 100% shadowing over 0%.
    shadow_p99_delta_100_ms: f64,
    /// `--idle-connections` only: parked keep-alive connections held
    /// open for the whole live run.
    idle_connections: usize,
    /// `--idle-connections` only: the server's open-connection gauge
    /// with the herd parked (must cover every idle connection).
    idle_open_reported: u64,
    /// `--idle-connections` only: process threads with the herd parked.
    idle_threads: u64,
    /// `--idle-connections` only: threads added over the pre-boot count
    /// — flat in N when the event loop owns the sockets.
    idle_thread_delta: u64,
    /// `--idle-connections` only: process RSS (MiB) with the herd parked.
    idle_rss_mb: f64,
    /// `--idle-connections` only: client p99 with zero idle connections.
    idle_baseline_p99_ms: f64,
    /// `--idle-connections` only: client p99 with the herd parked.
    idle_live_p99_ms: f64,
    /// `--idle-connections` only: live over baseline p99.
    idle_p99_ratio: f64,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value '{raw}' for {name}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let requests: usize = parse_flag(&args, "--requests", 2_000);
    let concurrency: usize = parse_flag(&args, "--concurrency", 8).max(1);
    let batch: usize = parse_flag(&args, "--batch", 1).max(1);
    let seed: u64 = parse_flag(&args, "--seed", 7);
    let scale: usize = parse_flag(&args, "--scale", 40);
    let json = args.iter().any(|a| a == "--json");
    let overload = args.iter().any(|a| a == "--overload");
    let compare = args.iter().any(|a| a == "--compare-batching");
    let shadow_overhead = args.iter().any(|a| a == "--shadow-overhead");
    let idle_connections: usize = parse_flag(&args, "--idle-connections", 0);
    let model = flag(&args, "--model");
    let max_batch: usize = parse_flag(&args, "--max-batch", ServerConfig::default().max_batch);
    let batch_wait = Duration::from_micros(parse_flag(
        &args,
        "--batch-wait-us",
        ServerConfig::default().batch_wait.as_micros() as u64,
    ));
    if (overload || compare || shadow_overhead || idle_connections > 0)
        && flag(&args, "--addr").is_some()
    {
        eprintln!(
            "error: --overload/--compare-batching/--shadow-overhead/--idle-connections are \
             self-contained; cannot target --addr"
        );
        std::process::exit(2);
    }
    if [overload, compare, shadow_overhead, idle_connections > 0].iter().filter(|m| **m).count() > 1
    {
        eprintln!(
            "error: pick one of --overload, --compare-batching, --shadow-overhead, \
             --idle-connections"
        );
        std::process::exit(2);
    }
    // The classify route this run drives; `--model` goes through the
    // registry route space (server-side it pools into the same
    // `route="/classify"` metric family, so the scrape still works).
    let classify_path = match &model {
        Some(name) => format!("/v1/models/{name}/classify"),
        None => "/classify".to_string(),
    };
    let classify_path = classify_path.as_str();

    // Query rows come from the same synthetic distribution regardless of
    // target mode; against an external server they must still match its
    // gene count, so both sides should use the same --seed/--scale.
    // `--samples` overrides the preset's training-set size: BSTCE
    // inference cost grows ~quadratically with training samples while
    // request parse cost only grows with genes, so more samples shifts
    // the served workload from parse-bound to kernel-bound.
    let samples: usize = parse_flag(&args, "--samples", 0);
    let mut cfg = microarray::synth::presets::all_aml(seed).scaled_down(scale.max(1));
    if samples > 0 {
        cfg.class_sizes = vec![(samples * 2).div_ceil(3), samples / 3];
    }
    let data = cfg.generate();
    let rows: Vec<Vec<f64>> = (0..data.n_samples()).map(|s| data.row(s).to_vec()).collect();

    let train = || {
        ModelBundle::train(&data, Provenance::new("ALL/AML synth", Some(seed))).unwrap_or_else(
            |e| {
                eprintln!("error: training self-contained bundle failed: {e}");
                std::process::exit(1);
            },
        )
    };
    let boot = |config: ServerConfig| {
        serve(config, train()).unwrap_or_else(|e| {
            eprintln!("error: starting in-process server failed: {e}");
            std::process::exit(1);
        })
    };

    let bodies: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(i, _)| {
            // Round-robin over dataset rows; batches rotate their window.
            let mut sample_rows = Vec::with_capacity(batch);
            for j in 0..batch {
                sample_rows.push(rows[(i + j) % rows.len()].clone());
            }
            if batch == 1 {
                format!("{{\"values\":{}}}", fmt_row(&sample_rows[0]))
            } else {
                format!("{{\"samples\":{}}}", fmt_rows(&sample_rows))
            }
        })
        .collect();

    if idle_connections > 0 {
        // The soak claim: an idle keep-alive connection costs an fd and
        // a parser state, never a thread. A fixed worker pool makes the
        // thread assertion sharp: everything beyond WORKERS + the fixed
        // service threads (event loop, supervisor, batcher) would mean
        // connections are holding threads again.
        const WORKERS: usize = 4;
        // Event loop + supervisor + batcher + main, with slack for the
        // runtime's own bookkeeping threads.
        const SERVICE_THREAD_SLACK: u64 = 8;
        let threads_before = proc_status("Threads:").unwrap_or(0);
        // Self-contained: client and server share this process, so each
        // parked connection costs two fds.
        match serve::sys::raise_nofile_limit((2 * idle_connections + 4096) as u64) {
            Ok(limit) if limit < (2 * idle_connections + 256) as u64 => {
                eprintln!(
                    "error: RLIMIT_NOFILE {limit} cannot hold {idle_connections} idle \
                     connections (need ~{})",
                    2 * idle_connections + 256
                );
                std::process::exit(1);
            }
            Ok(_) => {}
            Err(e) => eprintln!("warning: could not raise RLIMIT_NOFILE: {e}"),
        }
        let handle = boot(ServerConfig {
            threads: WORKERS,
            max_connections: idle_connections + 1024,
            max_batch,
            batch_wait,
            default_model: model.clone(),
            ..ServerConfig::default()
        });
        let addr = handle.addr().to_string();
        eprintln!(
            "serve_bench: IDLE-SOAK — {idle_connections} idle connections, {requests} live \
             requests x batch {batch}, concurrency {concurrency}, {WORKERS} workers, target {addr}"
        );

        // Baseline: the same live load with zero idle connections.
        let warmup = (requests / 10).clamp(1, 200);
        run_load(&addr, classify_path, &bodies, warmup, concurrency);
        let (baseline, _) = run_load(&addr, classify_path, &bodies, requests, concurrency);
        let baseline_p99_ms = obs::percentile_of_sorted(&baseline, 0.99) as f64 / 1000.0;

        // Park the herd: open and hold N idle keep-alive connections.
        let mut herd = Vec::with_capacity(idle_connections);
        for i in 0..idle_connections {
            match TcpStream::connect(&addr) {
                Ok(stream) => herd.push(stream),
                Err(e) => {
                    eprintln!("error: idle connection {i} failed: {e}");
                    std::process::exit(1);
                }
            }
            if herd.len() % 256 == 0 {
                // Let the accept loop drain the backlog.
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // The gauge must account for every parked connection before the
        // live run starts.
        let deadline = Instant::now() + Duration::from_secs(30);
        let open_reported = loop {
            let open = handle.metrics_snapshot().conns_open;
            if open >= idle_connections as u64 {
                break open;
            }
            if Instant::now() >= deadline {
                eprintln!("error: only {open} of {idle_connections} idle connections registered");
                std::process::exit(1);
            }
            std::thread::sleep(Duration::from_millis(50));
        };
        let idle_threads = proc_status("Threads:").unwrap_or(0);
        let idle_rss_mb = proc_status("VmRSS:").unwrap_or(0) as f64 / 1024.0;
        let thread_delta = idle_threads.saturating_sub(threads_before);
        eprintln!(
            "herd parked: {open_reported} open connections, {idle_threads} process threads \
             (+{thread_delta} over pre-boot), RSS {idle_rss_mb:.1} MiB"
        );
        if proc_status("Threads:").is_some() && thread_delta > WORKERS as u64 + SERVICE_THREAD_SLACK
        {
            eprintln!(
                "error: {thread_delta} threads added for {idle_connections} idle connections — \
                 connections are holding threads (allowed: {WORKERS} workers + \
                 {SERVICE_THREAD_SLACK})"
            );
            std::process::exit(1);
        }

        // Live load through the parked herd.
        let (live, elapsed) = run_load(&addr, classify_path, &bodies, requests, concurrency);
        let live_p99_ms = obs::percentile_of_sorted(&live, 0.99) as f64 / 1000.0;
        let ratio = if baseline_p99_ms > 0.0 { live_p99_ms / baseline_p99_ms } else { 0.0 };

        // No parked connection may have been dropped by the live run.
        let open_after = handle.metrics_snapshot().conns_open;
        if open_after < idle_connections as u64 {
            eprintln!(
                "error: {} idle connections vanished during the live run",
                idle_connections as u64 - open_after
            );
            std::process::exit(1);
        }
        let pct = |p: f64| obs::percentile_of_sorted(&live, p) as f64 / 1000.0;
        let max_ms = *live.last().expect("at least one request") as f64 / 1000.0;
        let throughput = live.len() as f64 / elapsed.as_secs_f64();
        println!(
            "idle-soak: {idle_connections} idle connections held, {idle_threads} threads \
             (+{thread_delta}), RSS {idle_rss_mb:.1} MiB"
        );
        println!(
            "live latency through the herd: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms \
             (baseline p99 {baseline_p99_ms:.3} ms, {ratio:.2}x)",
            pct(0.50),
            pct(0.90),
            live_p99_ms
        );
        let server = scrape_classify_duration(&addr);
        print_server_side(&server, live_p99_ms);
        if json {
            write_report(Report {
                mode: "idle_soak".into(),
                requests: live.len(),
                concurrency,
                batch,
                elapsed_secs: elapsed.as_secs_f64(),
                requests_per_sec: throughput,
                samples_per_sec: throughput * batch as f64,
                p50_ms: pct(0.50),
                p90_ms: pct(0.90),
                p99_ms: live_p99_ms,
                max_ms,
                accepted: live.len(),
                server_p50_ms: server.as_ref().map_or(0.0, |s| s.p50_ms),
                server_p99_ms: server.as_ref().map_or(0.0, |s| s.p99_ms),
                server_requests: server.as_ref().map_or(0, |s| s.count),
                coordinated_omission_skew: co_skew(live_p99_ms, &server),
                idle_connections,
                idle_open_reported: open_reported,
                idle_threads,
                idle_thread_delta: thread_delta,
                idle_rss_mb,
                idle_baseline_p99_ms: baseline_p99_ms,
                idle_live_p99_ms: live_p99_ms,
                idle_p99_ratio: ratio,
                ..Report::default()
            });
        }
        drop(herd);
        handle.shutdown();
        return;
    }

    if overload {
        // A deliberately tiny pool and queue so a modest client count
        // drives the server well past capacity.
        let handle = boot(ServerConfig {
            threads: 2,
            queue_depth: 2,
            max_batch,
            batch_wait,
            default_model: model.clone(),
            ..ServerConfig::default()
        });
        eprintln!("self-contained: overload target on {}", handle.addr());
        run_overload(
            &handle.addr().to_string(),
            classify_path,
            &bodies,
            requests,
            concurrency,
            batch,
            json,
        );
        handle.shutdown();
        return;
    }

    if compare {
        // As many workers as clients so concurrent requests can be
        // in-flight together — that concurrency is what the batcher
        // coalesces. Identical pool for both runs; only batching differs.
        let threads = concurrency.max(2);
        let mk = |mb: usize| ServerConfig {
            threads,
            max_batch: mb,
            batch_wait,
            default_model: model.clone(),
            ..ServerConfig::default()
        };
        eprintln!(
            "serve_bench: COMPARE — {requests} requests x batch {batch}, concurrency \
             {concurrency}, {threads} workers, max-batch {max_batch}"
        );
        let warmup = (requests / 10).clamp(1, 200);
        let handle = boot(mk(0));
        let addr = handle.addr().to_string();
        run_load(&addr, classify_path, &bodies, warmup, concurrency);
        let (unbatched, elapsed_u) = run_load(&addr, classify_path, &bodies, requests, concurrency);
        handle.shutdown();
        let unbatched_sps = (unbatched.len() * batch) as f64 / elapsed_u.as_secs_f64();
        eprintln!("unbatched: {unbatched_sps:.1} samples/s in {:.2}s", elapsed_u.as_secs_f64());

        let handle = boot(mk(max_batch.max(1)));
        let addr = handle.addr().to_string();
        run_load(&addr, classify_path, &bodies, warmup, concurrency);
        let (batched, elapsed_b) = run_load(&addr, classify_path, &bodies, requests, concurrency);
        let server = scrape_classify_duration(&addr);
        handle.shutdown();
        let batched_sps = (batched.len() * batch) as f64 / elapsed_b.as_secs_f64();
        let speedup = batched_sps / unbatched_sps;
        let pct = |p: f64| obs::percentile_of_sorted(&batched, p) as f64 / 1000.0;
        let max_ms = *batched.last().expect("at least one request") as f64 / 1000.0;
        println!(
            "compare-batching: unbatched {unbatched_sps:.1} samples/s, batched \
             {batched_sps:.1} samples/s — {speedup:.2}x amortization win"
        );
        println!(
            "batched latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {max_ms:.3} ms",
            pct(0.50),
            pct(0.90),
            pct(0.99),
        );
        print_server_side(&server, pct(0.99));
        if json {
            write_report(Report {
                mode: "compare_batching".into(),
                requests: batched.len(),
                concurrency,
                batch,
                elapsed_secs: elapsed_b.as_secs_f64(),
                requests_per_sec: batched.len() as f64 / elapsed_b.as_secs_f64(),
                samples_per_sec: batched_sps,
                p50_ms: pct(0.50),
                p90_ms: pct(0.90),
                p99_ms: pct(0.99),
                max_ms,
                accepted: batched.len(),
                shed: 0,
                shed_rate: 0.0,
                unloaded_p99_ms: 0.0,
                saturated_over_unloaded_p99: 0.0,
                server_p50_ms: server.as_ref().map_or(0.0, |s| s.p50_ms),
                server_p99_ms: server.as_ref().map_or(0.0, |s| s.p99_ms),
                server_requests: server.as_ref().map_or(0, |s| s.count),
                coordinated_omission_skew: co_skew(pct(0.99), &server),
                unbatched_samples_per_sec: unbatched_sps,
                batched_samples_per_sec: batched_sps,
                batched_speedup: speedup,
                ..Report::default()
            });
        }
        return;
    }

    if shadow_overhead {
        // A two-model registry: `primary` serves the load, `candidate`
        // (same width, different training seed) receives the shadow
        // replays. One boot per sampling rate, identical otherwise.
        let dir =
            std::env::temp_dir().join(format!("bstc_serve_bench_shadow_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
            eprintln!("error: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        });
        train().save(dir.join("primary.json")).expect("save primary");
        let candidate_data =
            microarray::synth::presets::all_aml(seed + 1).scaled_down(scale.max(1)).generate();
        ModelBundle::train(&candidate_data, Provenance::new("ALL/AML synth", Some(seed + 1)))
            .expect("train candidate")
            .save(dir.join("candidate.json"))
            .expect("save candidate");
        let threads = concurrency.max(2);
        eprintln!(
            "serve_bench: SHADOW-OVERHEAD — {requests} requests x batch {batch}, concurrency \
             {concurrency}, {threads} workers, shadow primary=candidate at 0%/10%/100%"
        );
        let warmup = (requests / 10).clamp(1, 200);
        let mut measured = Vec::new(); // (percent, sorted latencies, elapsed)
        for percent in [0.0f64, 10.0, 100.0] {
            let handle = serve::serve_models(ServerConfig {
                threads,
                max_batch,
                batch_wait,
                models_dir: Some(dir.clone()),
                default_model: Some("primary".into()),
                shadows: vec![serve::ShadowSpec::parse(&format!("primary=candidate:{percent}"))
                    .expect("shadow spec")],
                ..ServerConfig::default()
            })
            .unwrap_or_else(|e| {
                eprintln!("error: starting shadow-overhead server failed: {e}");
                std::process::exit(1);
            });
            let addr = handle.addr().to_string();
            run_load(&addr, classify_path, &bodies, warmup, concurrency);
            let (sorted, elapsed) = run_load(&addr, classify_path, &bodies, requests, concurrency);
            let snap = handle.metrics_snapshot();
            handle.shutdown();
            let p99 = obs::percentile_of_sorted(&sorted, 0.99) as f64 / 1000.0;
            eprintln!(
                "shadow {percent:>5.1}%: p99 {p99:.3} ms, {} shadow replays ({} dropped)",
                snap.shadow_requests, snap.shadow_dropped
            );
            measured.push((percent, sorted, elapsed));
        }
        std::fs::remove_dir_all(&dir).ok();
        let p99_of = |i: usize| obs::percentile_of_sorted(&measured[i].1, 0.99) as f64 / 1000.0;
        let (p99_0, p99_10, p99_100) = (p99_of(0), p99_of(1), p99_of(2));
        println!(
            "shadow-overhead: p99 {p99_0:.3} ms at 0% -> {p99_10:.3} ms at 10% \
             (+{:.3} ms) -> {p99_100:.3} ms at 100% (+{:.3} ms)",
            p99_10 - p99_0,
            p99_100 - p99_0
        );
        if json {
            let (_, baseline, elapsed_0) = &measured[0];
            let pct = |p: f64| obs::percentile_of_sorted(baseline, p) as f64 / 1000.0;
            let throughput = baseline.len() as f64 / elapsed_0.as_secs_f64();
            write_report(Report {
                mode: "shadow_overhead".into(),
                requests: baseline.len(),
                concurrency,
                batch,
                elapsed_secs: elapsed_0.as_secs_f64(),
                requests_per_sec: throughput,
                samples_per_sec: throughput * batch as f64,
                p50_ms: pct(0.50),
                p90_ms: pct(0.90),
                p99_ms: pct(0.99),
                max_ms: *baseline.last().expect("at least one request") as f64 / 1000.0,
                accepted: baseline.len(),
                shadow_p99_ms_at_0: p99_0,
                shadow_p99_ms_at_10: p99_10,
                shadow_p99_ms_at_100: p99_100,
                shadow_p99_delta_10_ms: p99_10 - p99_0,
                shadow_p99_delta_100_ms: p99_100 - p99_0,
                ..Report::default()
            });
        }
        return;
    }

    let (addr, handle) = match flag(&args, "--addr") {
        Some(addr) => (addr, None),
        None => {
            let handle = boot(ServerConfig {
                max_batch,
                batch_wait,
                default_model: model.clone(),
                ..ServerConfig::default()
            });
            eprintln!("self-contained: serving synthetic ALL/AML bundle on {}", handle.addr());
            (handle.addr().to_string(), Some(handle))
        }
    };

    eprintln!(
        "serve_bench: {requests} requests x batch {batch}, concurrency {concurrency}, \
         target {addr}"
    );
    let (sorted, elapsed) = run_load(&addr, classify_path, &bodies, requests, concurrency);
    let total = sorted.len();
    // Shared nearest-rank helper: the old truncating index under-reported
    // p99 for small runs (N=100 read index 98).
    let pct = |p: f64| obs::percentile_of_sorted(&sorted, p) as f64 / 1000.0;
    let throughput = total as f64 / elapsed.as_secs_f64();
    println!(
        "throughput: {throughput:.1} req/s ({:.1} samples/s) over {total} requests in {:.2}s",
        throughput * batch as f64,
        elapsed.as_secs_f64()
    );
    let max_ms = *sorted.last().expect("at least one request") as f64 / 1000.0;
    println!(
        "latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        max_ms
    );
    let server = scrape_classify_duration(&addr);
    print_server_side(&server, pct(0.99));

    if json {
        write_report(Report {
            mode: "steady".into(),
            requests: total,
            concurrency,
            batch,
            elapsed_secs: elapsed.as_secs_f64(),
            requests_per_sec: throughput,
            samples_per_sec: throughput * batch as f64,
            p50_ms: pct(0.50),
            p90_ms: pct(0.90),
            p99_ms: pct(0.99),
            max_ms,
            accepted: total,
            server_p50_ms: server.as_ref().map_or(0.0, |s| s.p50_ms),
            server_p99_ms: server.as_ref().map_or(0.0, |s| s.p99_ms),
            server_requests: server.as_ref().map_or(0, |s| s.count),
            coordinated_omission_skew: co_skew(pct(0.99), &server),
            ..Report::default()
        });
    }

    if let Some(handle) = handle {
        handle.shutdown();
    }
}

/// Drives the steady closed-loop keep-alive load. Returns the **sorted**
/// per-request client latencies (µs) and the elapsed wall clock.
fn run_load(
    addr: &str,
    path: &str,
    bodies: &[String],
    requests: usize,
    concurrency: usize,
) -> (Vec<u64>, Duration) {
    let started = Instant::now();
    let per_worker = requests.div_ceil(concurrency);
    let mut latencies_us: Vec<u64> = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(concurrency);
        for w in 0..concurrency {
            joins.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(per_worker);
                let mut conn = Connection::open(addr);
                for i in 0..per_worker {
                    let body = &bodies[(w * per_worker + i) % bodies.len()];
                    let t0 = Instant::now();
                    let status = conn.post_classify(addr, path, body);
                    latencies.push(t0.elapsed().as_micros() as u64);
                    if status != 200 {
                        eprintln!("error: /classify returned HTTP {status}");
                        std::process::exit(1);
                    }
                }
                latencies
            }));
        }
        joins.into_iter().flat_map(|j| j.join().expect("worker panicked")).collect()
    });
    let elapsed = started.elapsed();
    latencies_us.sort_unstable();
    (latencies_us, elapsed)
}

/// Server-side `/classify` request-duration percentiles, scraped from
/// the target's `/metrics` exposition.
struct ServerHist {
    count: u64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Minimal `GET` returning the response body (`None` on any failure —
/// the scrape is best-effort garnish on the client measurements).
fn http_get(addr: &str, path: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream);
    let request = format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n");
    reader.get_mut().write_all(request.as_bytes()).ok()?;
    let mut text = String::new();
    reader.read_to_string(&mut text).ok()?;
    Some(text.split_once("\r\n\r\n")?.1.to_string())
}

/// Scrapes `bstc_request_duration_us{route="/classify"}` and extracts
/// nearest-rank percentiles from its cumulative buckets. The family is
/// windowed server-side, so this reflects the run just driven, not the
/// server's whole lifetime.
fn scrape_classify_duration(addr: &str) -> Option<ServerHist> {
    let metrics = http_get(addr, "/metrics")?;
    let bucket_prefix = "bstc_request_duration_us_bucket{route=\"/classify\",le=\"";
    let count_prefix = "bstc_request_duration_us_count{route=\"/classify\"}";
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    let mut count = 0u64;
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(bucket_prefix) {
            let (le, tail) = rest.split_once("\"}")?;
            let le: f64 = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            buckets.push((le, tail.trim().parse().ok()?));
        } else if let Some(rest) = line.strip_prefix(count_prefix) {
            count = rest.trim().parse().ok()?;
        }
    }
    if count == 0 || buckets.is_empty() {
        return None;
    }
    let pct = |p: f64| {
        let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
        buckets
            .iter()
            .find(|(_, cum)| *cum >= rank)
            .map(|(le, _)| *le)
            .filter(|le| le.is_finite())
            // Rank in the +Inf bucket: report the largest finite bound.
            .or_else(|| buckets.iter().rev().map(|(le, _)| *le).find(|le| le.is_finite()))
            .unwrap_or(0.0)
            / 1000.0
    };
    Some(ServerHist { count, p50_ms: pct(0.50), p99_ms: pct(0.99) })
}

/// Coordinated-omission check: the closed-loop client cannot issue
/// requests while one is stuck, so slow periods are under-sampled in
/// its percentiles. A client p99 at less than half the server-observed
/// p99 means the client numbers are too rosy to trust.
fn co_skew(client_p99_ms: f64, server: &Option<ServerHist>) -> bool {
    server.as_ref().is_some_and(|s| s.count > 0 && client_p99_ms * 2.0 < s.p99_ms)
}

fn print_server_side(server: &Option<ServerHist>, client_p99_ms: f64) {
    match server {
        Some(s) => {
            let skew = if co_skew(client_p99_ms, server) {
                "  [WARNING: client p99 << server p99 — coordinated-omission skew, trust the \
                 server numbers]"
            } else {
                ""
            };
            println!(
                "server-side: p50 {:.3} ms  p99 {:.3} ms over {} requests{skew}",
                s.p50_ms, s.p99_ms, s.count
            );
        }
        None => println!("server-side: /metrics scrape failed; client percentiles only"),
    }
}

fn write_report(report: Report) {
    let path = "BENCH_serve.json";
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {path}");
}

/// One request on a fresh `connection: close` socket. Returns the status
/// and whether a `Retry-After` header accompanied it; `None` when the
/// connection died without an HTTP answer.
fn one_shot(addr: &str, path: &str, body: &str) -> Option<(u16, bool)> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream);
    let request = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    reader.get_mut().write_all(request.as_bytes()).ok()?;
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok().filter(|&n| n > 0)?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut retry_after = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok().filter(|&n| n > 0)?;
        if line.trim_end().is_empty() {
            break;
        }
        if line.to_ascii_lowercase().starts_with("retry-after:") {
            retry_after = true;
        }
    }
    let mut rest = Vec::new();
    let _ = reader.read_to_end(&mut rest);
    Some((status, retry_after))
}

/// Saturation benchmark: calibrate the unloaded p99 first, then hammer the
/// tiny-pool server and report shed rate plus the accepted-request latency
/// distribution under overload.
fn run_overload(
    addr: &str,
    path: &str,
    bodies: &[String],
    requests: usize,
    concurrency: usize,
    batch: usize,
    json: bool,
) {
    // -- calibration: sequential one-shots against the idle server ------
    let calibration = 500.min(requests.max(1));
    let mut calib_us: Vec<u64> = Vec::with_capacity(calibration);
    for i in 0..calibration {
        let body = &bodies[i % bodies.len()];
        let t0 = Instant::now();
        match one_shot(addr, path, body) {
            Some((200, _)) => calib_us.push(t0.elapsed().as_micros() as u64),
            Some((status, _)) => {
                eprintln!("error: calibration request returned HTTP {status}");
                std::process::exit(1);
            }
            None => {
                eprintln!("error: calibration request got no answer");
                std::process::exit(1);
            }
        }
    }
    calib_us.sort_unstable();
    let unloaded_p99_ms = obs::percentile_of_sorted(&calib_us, 0.99) as f64 / 1000.0;
    eprintln!("serve_bench: unloaded p99 {unloaded_p99_ms:.3} ms over {calibration} requests");

    eprintln!(
        "serve_bench: OVERLOAD — {requests} one-shot requests, concurrency {concurrency}, \
         target {addr}"
    );
    let started = Instant::now();
    let per_worker = requests.div_ceil(concurrency);
    // Per worker: (latencies of accepted requests, shed count, 503s
    // missing Retry-After, connections that died without an answer).
    let results: Vec<(Vec<u64>, usize, usize, usize)> = std::thread::scope(|scope| {
        let mut joins = Vec::with_capacity(concurrency);
        for w in 0..concurrency {
            joins.push(scope.spawn(move || {
                let mut accepted = Vec::with_capacity(per_worker);
                let (mut shed, mut bare_503, mut dead) = (0usize, 0usize, 0usize);
                for i in 0..per_worker {
                    let body = &bodies[(w * per_worker + i) % bodies.len()];
                    let t0 = Instant::now();
                    match one_shot(addr, path, body) {
                        Some((200, _)) => accepted.push(t0.elapsed().as_micros() as u64),
                        Some((503, true)) => shed += 1,
                        Some((503, false)) => {
                            shed += 1;
                            bare_503 += 1;
                        }
                        Some((status, _)) => {
                            eprintln!("error: /classify returned HTTP {status} under overload");
                            std::process::exit(1);
                        }
                        None => dead += 1,
                    }
                }
                (accepted, shed, bare_503, dead)
            }));
        }
        joins.into_iter().map(|j| j.join().expect("worker panicked")).collect()
    });
    let elapsed = started.elapsed();

    let mut accepted_us: Vec<u64> = Vec::new();
    let (mut shed, mut bare_503, mut dead) = (0usize, 0usize, 0usize);
    for (lat, s, b, d) in results {
        accepted_us.extend(lat);
        shed += s;
        bare_503 += b;
        dead += d;
    }
    if bare_503 > 0 {
        eprintln!("error: {bare_503} of {shed} 503 responses arrived without Retry-After");
        std::process::exit(1);
    }
    if dead > 0 {
        eprintln!("error: {dead} connections closed without any HTTP response");
        std::process::exit(1);
    }
    if accepted_us.is_empty() {
        eprintln!("error: overload run accepted zero requests");
        std::process::exit(1);
    }

    accepted_us.sort_unstable();
    let total = accepted_us.len() + shed;
    let pct = |p: f64| obs::percentile_of_sorted(&accepted_us, p) as f64 / 1000.0;
    let max_ms = *accepted_us.last().expect("nonempty") as f64 / 1000.0;
    let shed_rate = shed as f64 / total as f64;
    let throughput = accepted_us.len() as f64 / elapsed.as_secs_f64();
    let ratio = if unloaded_p99_ms > 0.0 { pct(0.99) / unloaded_p99_ms } else { 0.0 };
    println!(
        "overload: {} accepted + {shed} shed of {total} ({:.1}% shed, every 503 carried \
         Retry-After) in {:.2}s",
        accepted_us.len(),
        shed_rate * 100.0,
        elapsed.as_secs_f64()
    );
    println!(
        "accepted latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms \
         ({ratio:.1}x unloaded p99 {unloaded_p99_ms:.3} ms)",
        pct(0.50),
        pct(0.90),
        pct(0.99),
        max_ms
    );

    let server = scrape_classify_duration(addr);
    print_server_side(&server, pct(0.99));

    if json {
        write_report(Report {
            mode: "overload".into(),
            requests: total,
            concurrency,
            batch,
            elapsed_secs: elapsed.as_secs_f64(),
            requests_per_sec: throughput,
            samples_per_sec: throughput * batch as f64,
            p50_ms: pct(0.50),
            p90_ms: pct(0.90),
            p99_ms: pct(0.99),
            max_ms,
            accepted: accepted_us.len(),
            shed,
            shed_rate,
            unloaded_p99_ms,
            saturated_over_unloaded_p99: ratio,
            server_p50_ms: server.as_ref().map_or(0.0, |s| s.p50_ms),
            server_p99_ms: server.as_ref().map_or(0.0, |s| s.p99_ms),
            server_requests: server.as_ref().map_or(0, |s| s.count),
            coordinated_omission_skew: co_skew(pct(0.99), &server),
            ..Report::default()
        });
    }
}

/// One numeric field from `/proc/self/status` (`None` off Linux — the
/// soak then skips its thread/RSS assertions).
fn proc_status(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    text.lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Renders `[1,2]` without pulling in a serializer.
fn fmt_row(row: &[f64]) -> String {
    let mut out = String::from("[");
    for (j, v) in row.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        out.push_str(&format!("{v}"));
    }
    out.push(']');
    out
}

/// Renders `[[1,2],[3,4]]`.
fn fmt_rows(rows: &[Vec<f64>]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_row(row));
    }
    out.push(']');
    out
}

/// One keep-alive client connection, reopened transparently if the server
/// closes it (e.g. an idle timeout between worker start and first send).
struct Connection {
    stream: BufReader<TcpStream>,
}

impl Connection {
    fn open(addr: &str) -> Connection {
        let stream = TcpStream::connect(addr).unwrap_or_else(|e| {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(1);
        });
        stream.set_nodelay(true).ok();
        Connection { stream: BufReader::new(stream) }
    }

    fn post_classify(&mut self, addr: &str, path: &str, body: &str) -> u16 {
        match self.try_post(path, body) {
            Some(status) => status,
            None => {
                // Stale keep-alive connection: reconnect once and retry.
                *self = Connection::open(addr);
                self.try_post(path, body).unwrap_or_else(|| {
                    eprintln!("error: connection to {addr} dropped mid-request");
                    std::process::exit(1);
                })
            }
        }
    }

    /// Sends one request and reads one response; `None` on a dead socket.
    fn try_post(&mut self, path: &str, body: &str) -> Option<u16> {
        let request = format!(
            "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\n\
             content-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.get_mut().write_all(request.as_bytes()).ok()?;

        let mut status_line = String::new();
        self.stream.read_line(&mut status_line).ok().filter(|&n| n > 0)?;
        let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.stream.read_line(&mut line).ok().filter(|&n| n > 0)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().ok()?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body).ok()?;
        Some(status)
    }
}
