//! Figure 6 — Prostate Cancer cross-validation boxplots. As in the paper,
//! RCBT boxplots are omitted for training sizes where it could not finish
//! all 25 tests within the cutoff; BSTC's accuracy should rise
//! monotonically with training size.

use bench_suite::{cv_study, render_boxplots, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let study = cv_study(DatasetKind::Prostate, &opts, true, "fig6_pc");
    println!("Figure 6: PC Cross-Validation Results (accuracy boxplots)");
    println!("{}", render_boxplots(&study.summaries));
    // The §6.2.3 observation: BSTC mean accuracy increases with training size.
    for s in &study.summaries {
        println!("BSTC mean @ {}: {:.2}%", s.cell, 100.0 * s.bstc_acc.mean);
    }
}
