//! Figure 5 — Lung Cancer cross-validation boxplots (protocol of
//! Figure 4; the fixed-count cell is 1-16/0-16).

use bench_suite::{cv_study, render_boxplots, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let study = cv_study(DatasetKind::Lung, &opts, true, "fig5_lc");
    println!("Figure 5: LC Cross-Validation Results (accuracy boxplots)");
    println!("{}", render_boxplots(&study.summaries));
    let means: Vec<f64> = study.records.iter().map(|r| r.bstc_acc).collect();
    println!(
        "BSTC mean accuracy over all {} tests: {:.2}%",
        means.len(),
        100.0 * eval::mean(&means)
    );
    let rcbt: Vec<f64> =
        study.records.iter().filter_map(|r| r.rcbt.and_then(|x| x.accuracy)).collect();
    if !rcbt.is_empty() {
        println!(
            "RCBT mean accuracy over {} finished tests: {:.2}%",
            rcbt.len(),
            100.0 * eval::mean(&rcbt)
        );
    }
}
