//! The §5.3 multi-class claim: "BSTC easily generalizes to datasets
//! containing more than two class labels" (no table in the paper — this
//! is the promised extension experiment). Compares BSTC with the
//! multi-class-capable baselines on 3- and 5-class synthetic tumors.

use bench_suite::Opts;
use eval::{CvCell, SplitSpec};
use microarray::synth::presets;

type Row = (f64, f64, f64, f64);

fn main() {
    let opts = Opts::parse();
    let mut t = eval::TextTable::new(vec![
        "Dataset",
        "Classes",
        "BSTC",
        "SVM(1v1)",
        "randomForest",
        "C4.5 tree",
    ]);

    for (cfg, scale) in [(presets::three_class(opts.seed), 2), (presets::five_class(opts.seed), 2)]
    {
        let cfg = if opts.full { cfg } else { cfg.scaled_down(scale) };
        eprintln!("# {} …", cfg.name);
        let data = cfg.generate();
        let cell = CvCell { spec: SplitSpec::Fraction(0.6), reps: opts.reps, base_seed: opts.seed };
        let results = eval::run_cell(&data, &cell, |_, p| {
            let bstc = eval::run_bstc(p).accuracy;
            let base = eval::run_baselines(
                p,
                eval::BaselineParams { forest_trees: 50, seed: opts.seed, ..Default::default() },
            );
            (bstc, base.svm, base.forest, base.tree)
        });
        let rows: Vec<_> = results.into_iter().flatten().collect();
        let col = |f: &dyn Fn(&Row) -> f64| {
            let v: Vec<f64> = rows.iter().map(f).collect();
            format!("{:.2}%", 100.0 * eval::mean(&v))
        };
        t.row(vec![
            cfg.name.clone(),
            data.n_classes().to_string(),
            col(&|r| r.0),
            col(&|r| r.1),
            col(&|r| r.2),
            col(&|r| r.3),
        ]);
    }

    println!("Multi-class extension: 60% training, {} reps (mean accuracy)", opts.reps);
    println!("{}", t.render());
}
