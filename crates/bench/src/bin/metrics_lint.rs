//! Prometheus-exposition lint for `GET /metrics`, run by CI.
//!
//! Boots a real *two-model registry* server (a `primary` and a
//! label-flipped `candidate`, shadow-routed at 100% so the disagreement
//! counter provably goes nonzero), drives traffic over every route
//! family — named classifies, a version-bumping reload, unknown-model
//! 404s, the legacy aliases — scrapes `/metrics` over plain TCP, and
//! checks the exposition rules a scraper relies on:
//!
//! * every sample line belongs to a metric family announced by a
//!   `# TYPE` line earlier in the exposition (histogram `_bucket` /
//!   `_sum` / `_count` samples map to their base family);
//! * within each histogram series (same labels minus `le`), cumulative
//!   bucket counts are monotone non-decreasing, a `+Inf` bucket exists,
//!   and it equals the series' `_count`;
//! * per-model label hygiene: every `model="..."` label value is a
//!   *registered* model name — the registry's name grammar plus route
//!   pooling is what bounds the label cardinality, and this check
//!   catches any future code path that leaks request-controlled text
//!   into the label set.
//!
//! Exits nonzero with a description of every violation.

use serve::{serve_models, ModelBundle, Provenance, ServerConfig, ShadowSpec};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("write");
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

/// Splits `name{labels}` / bare `name`; returns (name, labels-with-braces).
fn split_name(sample: &str) -> (&str, &str) {
    match sample.find('{') {
        Some(i) => (&sample[..i], &sample[i..]),
        None => (sample, ""),
    }
}

/// Family a sample belongs to: histogram suffixes map to the base name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn lint(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new(); // family -> type
                                                               // Histogram series state: (family, labels-minus-le) -> bucket values
                                                               // in exposition order, the +Inf value, and the _count value.
    let mut buckets: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    let mut inf: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut sums: BTreeMap<(String, String), f64> = BTreeMap::new();
    // Largest finite `le` bound seen per series and the cumulative count
    // at it, for the _sum-vs-bucket impossibility check.
    let mut max_finite: BTreeMap<(String, String), (f64, u64)> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(name), Some(kind)) => {
                    typed.insert(name.to_string(), kind.to_string());
                }
                _ => violations.push(format!("line {lineno}: malformed TYPE line '{line}'")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            violations.push(format!("line {lineno}: no sample value in '{line}'"));
            continue;
        };
        let (name, labels) = split_name(sample);
        let family = family_of(name);
        let Some(kind) = typed.get(family) else {
            violations
                .push(format!("line {lineno}: sample '{name}' has no preceding # TYPE {family}"));
            continue;
        };
        let is_histogram_part = name != family;
        if is_histogram_part && kind != "histogram" {
            violations.push(format!(
                "line {lineno}: '{name}' looks like a histogram sample but {family} is a {kind}"
            ));
        }
        let Ok(value) = value.parse::<f64>() else {
            violations.push(format!("line {lineno}: non-numeric value in '{line}'"));
            continue;
        };
        if kind == "histogram" && is_histogram_part {
            let series_labels: String = labels
                .trim_start_matches('{')
                .trim_end_matches('}')
                .split(',')
                .filter(|kv| !kv.starts_with("le=") && !kv.is_empty())
                .collect::<Vec<_>>()
                .join(",");
            let key = (family.to_string(), series_labels);
            if name.ends_with("_bucket") {
                buckets.entry(key.clone()).or_default().push(value as u64);
                if labels.contains("le=\"+Inf\"") {
                    inf.insert(key, value as u64);
                } else if let Some(le) = labels
                    .split_once("le=\"")
                    .and_then(|(_, rest)| rest.split_once('"'))
                    .and_then(|(le, _)| le.parse::<f64>().ok())
                {
                    let slot = max_finite.entry(key).or_insert((le, value as u64));
                    if le >= slot.0 {
                        *slot = (le, value as u64);
                    }
                }
            } else if name.ends_with("_count") {
                counts.insert(key, value as u64);
            } else if name.ends_with("_sum") {
                sums.insert(key, value);
            }
        }
    }

    for (key, series) in &buckets {
        if series.windows(2).any(|w| w[0] > w[1]) {
            violations.push(format!("histogram {key:?}: bucket counts not monotone: {series:?}"));
        }
        match (inf.get(key), counts.get(key)) {
            (None, _) => violations.push(format!("histogram {key:?}: no +Inf bucket")),
            (Some(inf), Some(count)) if inf != count => {
                violations.push(format!("histogram {key:?}: +Inf bucket {inf} != _count {count}"))
            }
            (Some(_), None) => violations.push(format!("histogram {key:?}: no _count sample")),
            _ => {}
        }
        // _sum-vs-bucket impossibility: when every sample landed in a
        // finite bucket (the +Inf cumulative equals the cumulative at
        // the largest finite bound), no sample can exceed that bound, so
        // _sum > count × max-bound means the sum counted a sample the
        // buckets never saw — the exact artifact of a torn counts/sum
        // snapshot. Series with samples beyond the last finite bucket
        // are skipped: those values are unbounded by construction.
        if let (Some(&sum), Some(&total), Some(&(max_le, at_max))) =
            (sums.get(key), inf.get(key), max_finite.get(key))
        {
            if total == at_max && sum > total as f64 * max_le {
                violations.push(format!(
                    "histogram {key:?}: _sum {sum} exceeds {total} samples × max bucket bound \
                     {max_le} — sum includes a sample the buckets lack"
                ));
            }
        }
    }
    violations
}

/// Per-model label hygiene: every `model="X"` value in the exposition
/// must be one of `allowed` (the registered model names). Anything else
/// means a code path let unvalidated text into a label — unbounded
/// cardinality waiting to happen.
fn lint_model_labels(text: &str, allowed: &[&str]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut seen = BTreeSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("model=\"") {
            rest = &rest[at + 7..];
            let Some(close) = rest.find('"') else { break };
            let value = &rest[..close];
            seen.insert(value.to_string());
            if !allowed.contains(&value) {
                violations.push(format!(
                    "line {}: model label '{value}' is not a registered model name",
                    lineno + 1
                ));
            }
            rest = &rest[close + 1..];
        }
    }
    if seen.len() > allowed.len() {
        violations.push(format!(
            "model label cardinality {} exceeds the {} registered models: {seen:?}",
            seen.len(),
            allowed.len()
        ));
    }
    violations
}

/// A tiny two-gene dataset; `flip` inverts the labels so the flipped
/// model disagrees with the straight one on every row.
fn toy(flip: bool) -> microarray::ContinuousDataset {
    let labels = if flip { vec![1, 1, 1, 1, 0, 0, 0, 0] } else { vec![0, 0, 0, 0, 1, 1, 1, 1] };
    microarray::ContinuousDataset::new(
        vec!["gA".into(), "gB".into()],
        vec!["neg".into(), "pos".into()],
        vec![
            vec![1.0, 5.0],
            vec![1.2, 3.0],
            vec![0.8, 5.5],
            vec![1.1, 2.9],
            vec![9.0, 5.1],
            vec![9.2, 3.2],
            vec![8.9, 5.2],
            vec![9.1, 3.1],
        ],
        labels,
    )
    .unwrap()
}

fn post(addr: SocketAddr, target: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(
            format!(
                "POST {target} HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write");
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn main() {
    // Train in-process so the stage registry renders real spans too: a
    // primary and a deliberately label-flipped candidate, registered
    // from a models dir and shadow-routed at 100% — every shadowed
    // classify is a guaranteed disagreement.
    let models_dir: PathBuf =
        std::env::temp_dir().join(format!("bstc_metrics_lint_{}", std::process::id()));
    std::fs::create_dir_all(&models_dir).expect("create models dir");
    ModelBundle::train(&toy(false), Provenance::new("metrics-lint", Some(11)))
        .unwrap()
        .save(models_dir.join("primary.json"))
        .unwrap();
    ModelBundle::train(&toy(true), Provenance::new("metrics-lint-flipped", Some(11)))
        .unwrap()
        .save(models_dir.join("candidate.json"))
        .unwrap();
    let handle = serve_models(ServerConfig {
        threads: 2,
        models_dir: Some(models_dir.clone()),
        default_model: Some("primary".into()),
        max_resident: 1,
        shadows: vec![ShadowSpec::parse("primary=candidate:100").unwrap()],
        ..ServerConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot boot server: {e}");
        std::process::exit(1);
    });
    let addr = handle.addr();

    // Traffic so every endpoint family and latency histogram has samples:
    // the registry listing/metadata routes, unknown-model 404s, named and
    // legacy classifies (shadowed), and a version-bumping reload.
    for target in [
        "/health",
        "/model",
        "/metrics",
        "/nope",
        "/v1/models",
        "/v1/models/candidate",
        "/v1/models/ghost",
    ] {
        let _ = get(addr, target);
    }
    const CLASSIFIES: u64 = 4;
    for i in 0..CLASSIFIES {
        let target = if i % 2 == 0 { "/classify" } else { "/v1/models/primary/classify" };
        let response = post(addr, target, "{\"values\":[1.0,5.0]}");
        if !response.starts_with("HTTP/1.1 200") {
            eprintln!("error: {target} failed: {}", response.lines().next().unwrap_or(""));
            std::process::exit(1);
        }
    }
    let _ = post(addr, "/v1/models/candidate/classify", "{\"values\":[9.0,5.1]}");
    let _ = post(addr, "/v1/models/primary/reload", "{}"); // v1 -> v2

    // The shadow replay is asynchronous; wait for it to drain before the
    // scrape so the disagreement assertion below is deterministic.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.metrics_snapshot().shadow_requests < CLASSIFIES {
        if Instant::now() >= deadline {
            eprintln!("error: shadow jobs never replayed: {:?}", handle.metrics_snapshot());
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let response = get(addr, "/metrics");
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        eprintln!("error: unparseable /metrics response");
        std::process::exit(1);
    };
    if !head.starts_with("HTTP/1.1 200") {
        eprintln!("error: /metrics returned {}", head.lines().next().unwrap_or(""));
        std::process::exit(1);
    }

    let mut violations = lint(body);
    violations.extend(lint_model_labels(body, &["primary", "candidate"]));
    // The crafted flipped candidate makes disagreement certain: a zero
    // (or missing) counter here means shadow comparison is broken.
    let disagreements: u64 = body
        .lines()
        .find(|l| l.starts_with("bstc_shadow_disagreements_total{model=\"primary\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    if disagreements == 0 {
        violations.push(
            "bstc_shadow_disagreements_total{model=\"primary\"} is zero or missing after \
             shadowing a label-flipped candidate"
                .to_string(),
        );
    }
    // Both bundles trained in-process, so the BST builder's volume
    // counters must be present (with their own # TYPE lines, checked by
    // lint() above) and nonzero — this is what pins the bstc_bst_*
    // counter plumbing from Bst::build through obs to /metrics.
    for counter in
        ["bstc_bst_pairs_total", "bstc_bst_distinct_lists_total", "bstc_bst_arena_bytes_total"]
    {
        let value: u64 = body
            .lines()
            .find(|l| l.starts_with(counter) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if value == 0 {
            violations.push(format!(
                "{counter} is zero or missing after in-process training — the BST build \
                 counters are not reaching the exposition"
            ));
        }
    }
    handle.shutdown();
    std::fs::remove_dir_all(&models_dir).ok();
    if violations.is_empty() {
        let families = body.lines().filter(|l| l.starts_with("# TYPE ")).count();
        let samples = body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
        println!(
            "metrics_lint: OK — {families} families, {samples} samples, {disagreements} shadow \
             disagreements surfaced, 0 violations"
        );
    } else {
        eprintln!("metrics_lint: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::lint;

    #[test]
    fn clean_exposition_passes() {
        let text = "# TYPE a counter\na 1\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 3\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }

    #[test]
    fn untyped_sample_is_flagged() {
        assert!(lint("orphan 1\n").iter().any(|v| v.contains("no preceding # TYPE")));
    }

    #[test]
    fn non_monotone_buckets_are_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 0\n";
        assert!(lint(text).iter().any(|v| v.contains("not monotone")));
    }

    #[test]
    fn inf_count_mismatch_is_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 0\n";
        assert!(lint(text).iter().any(|v| v.contains("!= _count")));
    }

    #[test]
    fn sum_exceeding_bucket_capacity_is_flagged() {
        // 2 samples, all at or below 100, yet _sum claims 250: at least
        // one sample is in the sum without a bucket.
        let text = "# TYPE h histogram\nh_bucket{le=\"100\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 250\n";
        assert!(lint(text).iter().any(|v| v.contains("max bucket bound")), "{:?}", lint(text));
    }

    #[test]
    fn sum_within_bucket_capacity_passes() {
        let text = "# TYPE h histogram\nh_bucket{le=\"100\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 200\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }

    #[test]
    fn sum_check_skips_series_with_samples_beyond_finite_buckets() {
        // One sample sits past the last finite bucket (+Inf 3 > 2 at
        // le=100); its value is unbounded, so a large _sum is legal.
        let text = "# TYPE h histogram\nh_bucket{le=\"100\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 99999\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }

    #[test]
    fn registered_model_labels_pass() {
        let text = "# TYPE d counter\nd{model=\"a\"} 1\nd{model=\"b\"} 2\n";
        assert!(super::lint_model_labels(text, &["a", "b"]).is_empty());
    }

    #[test]
    fn unregistered_model_label_is_flagged() {
        let text = "# TYPE d counter\nd{model=\"a\"} 1\nd{model=\"evil/../name\"} 2\n";
        let violations = super::lint_model_labels(text, &["a"]);
        assert!(violations.iter().any(|v| v.contains("evil/../name")));
    }
}
