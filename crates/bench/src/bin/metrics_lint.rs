//! Prometheus-exposition lint for `GET /metrics`, run by CI.
//!
//! Boots a real server on a trained bundle, drives a little traffic
//! (including a training pipeline so the stage registry is populated),
//! scrapes `/metrics` over plain TCP, and checks the exposition rules a
//! scraper relies on:
//!
//! * every sample line belongs to a metric family announced by a
//!   `# TYPE` line earlier in the exposition (histogram `_bucket` /
//!   `_sum` / `_count` samples map to their base family);
//! * within each histogram series (same labels minus `le`), cumulative
//!   bucket counts are monotone non-decreasing, a `+Inf` bucket exists,
//!   and it equals the series' `_count`.
//!
//! Exits nonzero with a description of every violation.

use serve::{serve, ModelBundle, Provenance, ServerConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn get(addr: SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nconnection: close\r\n\r\n").as_bytes())
        .expect("write");
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

/// Splits `name{labels}` / bare `name`; returns (name, labels-with-braces).
fn split_name(sample: &str) -> (&str, &str) {
    match sample.find('{') {
        Some(i) => (&sample[..i], &sample[i..]),
        None => (sample, ""),
    }
}

/// Family a sample belongs to: histogram suffixes map to the base name.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return base;
        }
    }
    name
}

fn lint(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new(); // family -> type
                                                               // Histogram series state: (family, labels-minus-le) -> bucket values
                                                               // in exposition order, the +Inf value, and the _count value.
    let mut buckets: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
    let mut inf: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(name), Some(kind)) => {
                    typed.insert(name.to_string(), kind.to_string());
                }
                _ => violations.push(format!("line {lineno}: malformed TYPE line '{line}'")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            violations.push(format!("line {lineno}: no sample value in '{line}'"));
            continue;
        };
        let (name, labels) = split_name(sample);
        let family = family_of(name);
        let Some(kind) = typed.get(family) else {
            violations
                .push(format!("line {lineno}: sample '{name}' has no preceding # TYPE {family}"));
            continue;
        };
        let is_histogram_part = name != family;
        if is_histogram_part && kind != "histogram" {
            violations.push(format!(
                "line {lineno}: '{name}' looks like a histogram sample but {family} is a {kind}"
            ));
        }
        let Ok(value) = value.parse::<f64>() else {
            violations.push(format!("line {lineno}: non-numeric value in '{line}'"));
            continue;
        };
        if kind == "histogram" && is_histogram_part {
            let series_labels: String = labels
                .trim_start_matches('{')
                .trim_end_matches('}')
                .split(',')
                .filter(|kv| !kv.starts_with("le=") && !kv.is_empty())
                .collect::<Vec<_>>()
                .join(",");
            let key = (family.to_string(), series_labels);
            if name.ends_with("_bucket") {
                buckets.entry(key.clone()).or_default().push(value as u64);
                if labels.contains("le=\"+Inf\"") {
                    inf.insert(key, value as u64);
                }
            } else if name.ends_with("_count") {
                counts.insert(key, value as u64);
            }
        }
    }

    for (key, series) in &buckets {
        if series.windows(2).any(|w| w[0] > w[1]) {
            violations.push(format!("histogram {key:?}: bucket counts not monotone: {series:?}"));
        }
        match (inf.get(key), counts.get(key)) {
            (None, _) => violations.push(format!("histogram {key:?}: no +Inf bucket")),
            (Some(inf), Some(count)) if inf != count => {
                violations.push(format!("histogram {key:?}: +Inf bucket {inf} != _count {count}"))
            }
            (Some(_), None) => violations.push(format!("histogram {key:?}: no _count sample")),
            _ => {}
        }
    }
    violations
}

fn main() {
    // Train in-process so the stage registry renders real spans too.
    let data = microarray::synth::presets::all_aml(11).scaled_down(40).generate();
    let bundle = ModelBundle::train(&data, Provenance::new("metrics-lint", Some(11))).unwrap();
    let handle = serve(ServerConfig { threads: 2, ..ServerConfig::default() }, bundle)
        .unwrap_or_else(|e| {
            eprintln!("error: cannot boot server: {e}");
            std::process::exit(1);
        });
    let addr = handle.addr();

    // Traffic so every endpoint family and latency histogram has samples.
    for target in ["/health", "/model", "/metrics", "/nope"] {
        let _ = get(addr, target);
    }

    let response = get(addr, "/metrics");
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        eprintln!("error: unparseable /metrics response");
        std::process::exit(1);
    };
    if !head.starts_with("HTTP/1.1 200") {
        eprintln!("error: /metrics returned {}", head.lines().next().unwrap_or(""));
        std::process::exit(1);
    }

    let violations = lint(body);
    handle.shutdown();
    if violations.is_empty() {
        let families = body.lines().filter(|l| l.starts_with("# TYPE ")).count();
        let samples = body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count();
        println!("metrics_lint: OK — {families} families, {samples} samples, 0 violations");
    } else {
        eprintln!("metrics_lint: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::lint;

    #[test]
    fn clean_exposition_passes() {
        let text = "# TYPE a counter\na 1\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_count 2\nh_sum 3\n";
        assert!(lint(text).is_empty(), "{:?}", lint(text));
    }

    #[test]
    fn untyped_sample_is_flagged() {
        assert!(lint("orphan 1\n").iter().any(|v| v.contains("no preceding # TYPE")));
    }

    #[test]
    fn non_monotone_buckets_are_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\nh_sum 0\n";
        assert!(lint(text).iter().any(|v| v.contains("not monotone")));
    }

    #[test]
    fn inf_count_mismatch_is_flagged() {
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 0\n";
        assert!(lint(text).iter().any(|v| v.contains("!= _count")));
    }
}
