//! §8 ablation — "Generalizing BSTC": the paper proposes experimenting
//! with alternative boolean-formula arithmetizations beyond Algorithm 5's
//! `min`. This study compares `min` (as published), `product` (the
//! independence assumption the paper declines), and `mean`, plus the §8
//! confidence-gap heuristic.

use bench_suite::{scaled_config, DatasetKind, Opts};
use bstc::{Arithmetization, BstcModel};
use eval::{CvCell, SplitSpec};

type Row = (f64, f64, f64, f64);

fn main() {
    let opts = Opts::parse();
    let mut t = eval::TextTable::new(vec![
        "Dataset",
        "min (paper)",
        "product",
        "mean",
        "avg conf-gap (min)",
    ]);

    for kind in DatasetKind::all() {
        let cfg = scaled_config(kind, opts.full, opts.seed);
        eprintln!("# {} …", cfg.name);
        let data = cfg.generate();
        let cell = CvCell { spec: SplitSpec::Fraction(0.6), reps: opts.reps, base_seed: opts.seed };
        let results = eval::run_cell(&data, &cell, |_, p| {
            let accs: Vec<f64> =
                [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean]
                    .iter()
                    .map(|&a| eval::run_bstc_with(p, a).accuracy)
                    .collect();
            // Mean confidence gap of the published arithmetization.
            let model = BstcModel::train(&p.bool_train);
            let gaps: Vec<f64> =
                p.bool_test.samples().iter().map(|q| model.confidence_gap(q)).collect();
            (accs[0], accs[1], accs[2], eval::mean(&gaps))
        });
        let rows: Vec<_> = results.into_iter().flatten().collect();
        let col = |f: &dyn Fn(&Row) -> f64, pct: bool| {
            let v: Vec<f64> = rows.iter().map(f).collect();
            if pct {
                format!("{:.2}%", 100.0 * eval::mean(&v))
            } else {
                format!("{:.3}", eval::mean(&v))
            }
        };
        t.row(vec![
            kind.short().to_string(),
            col(&|r| r.0, true),
            col(&|r| r.1, true),
            col(&|r| r.2, true),
            col(&|r| r.3, false),
        ]);
    }

    println!("Arithmetization ablation (60% training, {} reps, mean accuracy)", opts.reps);
    println!("{}", t.render());
}
