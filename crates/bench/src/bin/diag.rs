//! Deep diagnostics for the miners on one prepared split: Top-k group
//! shapes, lower-bound BFS behaviour per group. Not part of the paper
//! reproduction — a tuning tool.
//!
//! Usage: `diag [ALL|LC|PC|OC] [--cutoff SECS] [--seed N]`

use bench_suite::{scaled_config, DatasetKind, Opts};
use eval::{draw_split, SplitSpec};
use rulemine::{mine_lower_bounds, mine_topk_groups, Budget, TopkParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = args
        .iter()
        .find_map(|a| match a.as_str() {
            "ALL" => Some(DatasetKind::AllAml),
            "LC" => Some(DatasetKind::Lung),
            "PC" => Some(DatasetKind::Prostate),
            "OC" => Some(DatasetKind::Ovarian),
            _ => None,
        })
        .unwrap_or(DatasetKind::AllAml);
    let opts = Opts::parse_from(
        args.into_iter().filter(|a| !matches!(a.as_str(), "ALL" | "LC" | "PC" | "OC")),
    );
    let cfg = scaled_config(kind, opts.full, opts.seed);
    let data = cfg.generate();
    let split = draw_split(data.labels(), data.n_classes(), &SplitSpec::Fraction(0.4), opts.seed);
    let p = eval::prepare(&data, &split).expect("informative genes");
    println!(
        "{}: train rows={} items={} genes={}",
        kind.short(),
        p.bool_train.n_samples(),
        p.bool_train.n_items(),
        p.genes_after_discretization
    );

    for class in 0..p.bool_train.n_classes() {
        let mut b = Budget::with_nodes(2_000_000);
        let res = mine_topk_groups(&p.bool_train, class, TopkParams::default(), &mut b);
        println!(
            "class {class}: topk groups={} nodes={} outcome={:?}",
            res.groups.len(),
            b.nodes_explored(),
            res.outcome
        );
        for (i, g) in res.groups.iter().take(10).enumerate() {
            let mut lb_budget = Budget::with_nodes(3_000_000);
            let t0 = std::time::Instant::now();
            let lb = mine_lower_bounds(&p.bool_train, g, 20, &mut lb_budget);
            println!(
                "  group {i}: width={} class_supp={} conf={:.2} -> bounds={} \
                 (min len {:?}) nodes={} {:?} in {:.2}s",
                g.items.len(),
                g.class_support,
                g.confidence,
                lb.bounds.len(),
                lb.bounds.iter().map(Vec::len).min(),
                lb_budget.nodes_explored(),
                lb.outcome,
                t0.elapsed().as_secs_f64(),
            );
        }
    }
}
