//! Figure 7 — Ovarian Cancer cross-validation boxplots (the largest
//! dataset; Top-k itself begins to DNF at the larger training sizes).

use bench_suite::{cv_study, render_boxplots, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let study = cv_study(DatasetKind::Ovarian, &opts, true, "fig7_oc");
    println!("Figure 7: OC Cross-Validation Results (accuracy boxplots)");
    println!("{}", render_boxplots(&study.summaries));
    for s in &study.summaries {
        println!("BSTC mean @ {}: {:.2}%", s.cell, 100.0 * s.bstc_acc.mean);
    }
}
