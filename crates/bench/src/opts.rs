//! Minimal flag parsing shared by every experiment binary (we avoid a CLI
//! dependency; the surface is five flags).

use std::time::Duration;

/// Common experiment options.
#[derive(Clone, Debug)]
pub struct Opts {
    /// `--full`: paper-scale dataset shapes, 25 reps, 2-hour cutoffs.
    /// Default is quick mode: scaled-down shapes, fewer reps, short
    /// cutoffs — same qualitative behaviour in seconds instead of days.
    pub full: bool,
    /// `--reps N`: replicates per cross-validation cell.
    pub reps: usize,
    /// `--cutoff SECS`: miner cutoff per phase per test.
    pub cutoff: Duration,
    /// `--seed N`: base RNG seed.
    pub seed: u64,
    /// `--out DIR`: where JSON artifacts land.
    pub out_dir: std::path::PathBuf,
}

impl Opts {
    /// Parses `std::env::args`, applying quick-mode defaults.
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values.
    pub fn parse() -> Opts {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Opts {
        let mut opts = Opts {
            full: false,
            reps: 5,
            cutoff: Duration::from_secs(10),
            seed: 42,
            out_dir: "results".into(),
        };
        let mut reps_set = false;
        let mut cutoff_set = false;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> String {
                it.next().unwrap_or_else(|| panic!("{name} needs a value"))
            };
            match arg.as_str() {
                "--full" => opts.full = true,
                "--quick" => opts.full = false,
                "--reps" => {
                    opts.reps = value("--reps").parse().expect("--reps N");
                    reps_set = true;
                }
                "--cutoff" => {
                    opts.cutoff =
                        Duration::from_secs_f64(value("--cutoff").parse().expect("--cutoff SECS"));
                    cutoff_set = true;
                }
                "--seed" => opts.seed = value("--seed").parse().expect("--seed N"),
                "--out" => opts.out_dir = value("--out").into(),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --full | --quick  --reps N  --cutoff SECS  --seed N  --out DIR"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        if opts.full {
            // Paper protocol unless explicitly overridden.
            if !reps_set {
                opts.reps = 25;
            }
            if !cutoff_set {
                opts.cutoff = Duration::from_secs(7200);
            }
        }
        opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Opts {
        Opts::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn quick_defaults() {
        let o = parse(&[]);
        assert!(!o.full);
        assert_eq!(o.reps, 5);
        assert_eq!(o.cutoff, Duration::from_secs(10));
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn full_mode_upgrades_defaults() {
        let o = parse(&["--full"]);
        assert!(o.full);
        assert_eq!(o.reps, 25);
        assert_eq!(o.cutoff, Duration::from_secs(7200));
    }

    #[test]
    fn explicit_values_override_full_defaults() {
        let o = parse(&["--full", "--reps", "3", "--cutoff", "1.5"]);
        assert_eq!(o.reps, 3);
        assert_eq!(o.cutoff, Duration::from_secs_f64(1.5));
    }

    #[test]
    fn seed_and_out() {
        let o = parse(&["--seed", "7", "--out", "/tmp/x"]);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out_dir, std::path::PathBuf::from("/tmp/x"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }
}
