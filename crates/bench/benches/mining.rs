//! Criterion: rule mining — polynomial (MC)²BAR mining (Algorithm 3)
//! versus the exponential Top-k rule-group search, on growing training
//! sizes. This is the microbenchmark behind the paper's headline claim.

use bstc::{mine_topk, Bst};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microarray::synth::BoolSynthConfig;
use rulemine::{mine_topk_groups, Budget, TopkParams};
use std::hint::black_box;

fn dataset(n_samples: usize) -> microarray::BoolDataset {
    BoolSynthConfig {
        name: "bench".into(),
        n_items: 300,
        class_sizes: vec![n_samples / 2, n_samples - n_samples / 2],
        class_names: vec!["c0".into(), "c1".into()],
        markers_per_class: 30,
        marker_on: 0.85,
        background_on: 0.25,
        seed: 7,
    }
    .generate()
}

fn bench_mc2bar(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc2bar_mining");
    for &n in &[20usize, 40, 80] {
        let data = dataset(n);
        let bst = Bst::build(&data, 0);
        group.bench_with_input(BenchmarkId::new("samples", n), &bst, |b, bst| {
            b.iter(|| mine_topk(black_box(bst), 10))
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_rule_groups");
    group.sample_size(10);
    // Kept small: this is the exponential side of the comparison.
    for &n in &[14usize, 18, 22] {
        let data = dataset(n);
        group.bench_with_input(BenchmarkId::new("samples", n), &data, |b, d| {
            b.iter(|| {
                let mut budget = Budget::with_nodes(50_000_000);
                mine_topk_groups(black_box(d), 0, TopkParams { k: 10, minsup: 0.5 }, &mut budget)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mc2bar, bench_topk);
criterion_main!(benches);
