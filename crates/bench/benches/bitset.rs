//! Criterion: the bitset substrate — the inner loop of everything.

use criterion::{criterion_group, criterion_main, Criterion};
use microarray::BitSet;
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitset");
    let a = BitSet::from_iter(10_000, (0..10_000).step_by(3));
    let b = BitSet::from_iter(10_000, (0..10_000).step_by(7));

    group.bench_function("intersection_len", |bch| {
        bch.iter(|| black_box(&a).intersection_len(black_box(&b)))
    });
    group.bench_function("is_subset", |bch| bch.iter(|| black_box(&a).is_subset(black_box(&b))));
    group.bench_function("intersection_alloc", |bch| {
        bch.iter(|| black_box(&a).intersection(black_box(&b)))
    });
    group.bench_function("iter_sum", |bch| bch.iter(|| black_box(&a).iter().sum::<usize>()));
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
