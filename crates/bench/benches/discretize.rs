//! Criterion: entropy-MDL discretization cost (fit + transform).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discretize::Discretizer;
use microarray::synth::presets;
use std::hint::black_box;

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdl_discretize");
    group.sample_size(10);
    for &scale in &[50usize, 25] {
        let data = presets::all_aml(3).scaled_down(scale).generate();
        let label = format!("all_aml_{}g_{}s", data.n_genes(), data.n_samples());
        group.bench_with_input(BenchmarkId::new("fit", label), &data, |b, d| {
            b.iter(|| Discretizer::fit(black_box(d)))
        });
    }
    let data = presets::all_aml(3).scaled_down(25).generate();
    let disc = Discretizer::fit(&data);
    group.bench_function("transform", |b| b.iter(|| disc.transform(black_box(&data)).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
