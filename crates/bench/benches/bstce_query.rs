//! Criterion: BSTCE per-query classification (Algorithm 5) — the §5.3.1
//! claim is O(|S|²·|G|) per query worst case, far lower in practice.

use bstc::BstcModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microarray::synth::BoolSynthConfig;
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("bstce_query");
    for &n in &[40usize, 80, 160] {
        let data = BoolSynthConfig {
            name: "bench".into(),
            n_items: 1000,
            class_sizes: vec![n / 2, n - n / 2],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: 100,
            marker_on: 0.9,
            background_on: 0.3,
            seed: 42,
        }
        .generate();
        let model = BstcModel::train(&data);
        let query = data.sample(0).clone();
        group.bench_with_input(BenchmarkId::new("samples", n), &(), |b, _| {
            b.iter(|| model.classify(black_box(&query)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
