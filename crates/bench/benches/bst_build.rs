//! Criterion: BST construction (Algorithm 1) across dataset shapes —
//! the §3.1.1 claim is O(|S|²·|G|) build time.

use bstc::Bst;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use microarray::synth::BoolSynthConfig;
use std::hint::black_box;

fn dataset(n_samples: usize, n_items: usize) -> microarray::BoolDataset {
    BoolSynthConfig {
        name: "bench".into(),
        n_items,
        class_sizes: vec![n_samples / 2, n_samples - n_samples / 2],
        class_names: vec!["c0".into(), "c1".into()],
        markers_per_class: n_items / 10,
        marker_on: 0.9,
        background_on: 0.3,
        seed: 42,
    }
    .generate()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bst_build");
    for &n in &[40usize, 80, 160] {
        let data = dataset(n, 1000);
        group.bench_with_input(BenchmarkId::new("samples", n), &data, |b, d| {
            b.iter(|| Bst::build_all(black_box(d)))
        });
    }
    for &g in &[500usize, 1000, 2000] {
        let data = dataset(80, g);
        group.bench_with_input(BenchmarkId::new("items", g), &data, |b, d| {
            b.iter(|| Bst::build_all(black_box(d)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
