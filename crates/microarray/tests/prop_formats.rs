//! Tri-format equivalence: the TSV, JSON, and `.bmx` codecs must agree
//! bit-for-bit — a dataset pushed through any chain of the three comes
//! back with identical names, labels, and `f64` bit patterns — and the
//! formats must agree on what they *reject*, so a poisoned matrix can't
//! sneak into MDL through one format when another would refuse it.

use microarray::synth::SynthConfig;
use microarray::{io, write_bmx, BmxDataset, ContinuousDataset};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (8usize..32, (4usize..9, 4usize..9), 0u64..1000).prop_map(|(n_genes, (a, b), seed)| {
        SynthConfig {
            name: "fmt".into(),
            n_genes,
            class_sizes: vec![a, b],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: 2,
            marker_shift: 2.0,
            marker_dropout: 0.1,
            marker_modules: 0,
            wobble_rate: 0.1,
            marker_flip: 0.0,
            atypical_rate: 0.0,
            atypical_strength: 0.3,
            seed,
        }
    })
}

/// Structural + bit-level equality; panics (= proptest failure) on any
/// divergence so the report names the first differing coordinate.
fn assert_bit_identical(a: &ContinuousDataset, b: &ContinuousDataset) {
    assert_eq!(a.gene_names(), b.gene_names());
    assert_eq!(a.class_names(), b.class_names());
    assert_eq!(a.labels(), b.labels());
    assert_eq!(a.n_samples(), b.n_samples());
    for s in 0..a.n_samples() {
        for (g, (x, y)) in a.row(s).iter().zip(b.row(s)).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "sample {s} gene {g}: {x} != {y}");
        }
    }
}

fn bmx_round_trip(data: &ContinuousDataset, tag: &str) -> ContinuousDataset {
    let path = std::env::temp_dir().join(format!("prop_formats_{}_{tag}.bmx", std::process::id()));
    write_bmx(data, &path).unwrap();
    let back = BmxDataset::open(&path).unwrap().to_continuous().unwrap();
    let _ = std::fs::remove_file(&path);
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every single-format round trip is bit-identical.
    #[test]
    fn each_format_round_trips_bit_identically(cfg in config()) {
        let data = cfg.generate();
        let mut tsv_bytes = Vec::new();
        io::write_cont_tsv(&data, &mut tsv_bytes).unwrap();
        assert_bit_identical(&data, &io::read_cont_tsv(&tsv_bytes[..]).unwrap());
        assert_bit_identical(&data, &io::cont_from_json(&io::cont_to_json(&data)).unwrap());
        assert_bit_identical(&data, &bmx_round_trip(&data, "single"));
    }

    /// Chaining the codecs (TSV → JSON → .bmx → memory) accumulates no
    /// drift: the conversions compose without re-encoding loss.
    #[test]
    fn chained_conversions_accumulate_no_drift(cfg in config()) {
        let data = cfg.generate();
        let mut tsv_bytes = Vec::new();
        io::write_cont_tsv(&data, &mut tsv_bytes).unwrap();
        let from_tsv = io::read_cont_tsv(&tsv_bytes[..]).unwrap();
        let from_json = io::cont_from_json(&io::cont_to_json(&from_tsv)).unwrap();
        let from_bmx = bmx_round_trip(&from_json, "chain");
        assert_bit_identical(&data, &from_bmx);
    }

    /// A non-finite value is rejected on every ingest path: the TSV
    /// reader refuses the line, and the .bmx writer refuses the column —
    /// the same matrix cannot be smuggled in via format choice.
    #[test]
    fn non_finite_rejection_agrees_across_formats(cfg in config(), which in 0usize..3) {
        let poison = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        let clean = cfg.generate();
        let mut rows: Vec<Vec<f64>> =
            (0..clean.n_samples()).map(|s| clean.row(s).to_vec()).collect();
        rows[0][0] = poison;
        let poisoned = ContinuousDataset::new(
            clean.gene_names().to_vec(),
            clean.class_names().to_vec(),
            rows,
            clean.labels().to_vec(),
        )
        .unwrap();
        let mut tsv_bytes = Vec::new();
        io::write_cont_tsv(&poisoned, &mut tsv_bytes).unwrap();
        prop_assert!(io::read_cont_tsv(&tsv_bytes[..]).is_err(), "TSV reader accepted {poison}");
        let path = std::env::temp_dir()
            .join(format!("prop_formats_{}_poison.bmx", std::process::id()));
        let result = write_bmx(&poisoned, &path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(result.is_err(), "bmx writer accepted {poison}");
    }
}
