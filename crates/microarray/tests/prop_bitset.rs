//! Property tests: `BitSet` behaves exactly like a `HashSet<usize>` model,
//! and the dataset text formats round-trip arbitrary datasets.

use microarray::bitset::BitSet;
use microarray::dataset::BoolDataset;
use microarray::io;
use proptest::prelude::*;
use std::collections::HashSet;

const CAP: usize = 200;

fn elem() -> impl Strategy<Value = usize> {
    0..CAP
}

fn elems() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(elem(), 0..64)
}

fn model(v: &[usize]) -> HashSet<usize> {
    v.iter().copied().collect()
}

proptest! {
    #[test]
    fn insert_matches_model(v in elems()) {
        let s = BitSet::from_iter(CAP, v.iter().copied());
        let m = model(&v);
        prop_assert_eq!(s.len(), m.len());
        for i in 0..CAP {
            prop_assert_eq!(s.contains(i), m.contains(&i));
        }
        let mut iterated: Vec<usize> = s.iter().collect();
        let mut expected: Vec<usize> = m.into_iter().collect();
        expected.sort_unstable();
        iterated.sort_unstable();
        prop_assert_eq!(iterated, expected);
    }

    #[test]
    fn iter_is_ascending_and_unique(v in elems()) {
        let s = BitSet::from_iter(CAP, v.iter().copied());
        let elems: Vec<usize> = s.iter().collect();
        for w in elems.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn algebra_matches_model(a in elems(), b in elems()) {
        let sa = BitSet::from_iter(CAP, a.iter().copied());
        let sb = BitSet::from_iter(CAP, b.iter().copied());
        let ma = model(&a);
        let mb = model(&b);

        let inter: HashSet<usize> = sa.intersection(&sb).iter().collect();
        prop_assert_eq!(&inter, &ma.intersection(&mb).copied().collect::<HashSet<_>>());
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());

        let uni: HashSet<usize> = sa.union(&sb).iter().collect();
        prop_assert_eq!(&uni, &ma.union(&mb).copied().collect::<HashSet<_>>());

        let diff: HashSet<usize> = sa.difference(&sb).iter().collect();
        prop_assert_eq!(&diff, &ma.difference(&mb).copied().collect::<HashSet<_>>());

        prop_assert_eq!(sa.is_subset(&sb), ma.is_subset(&mb));
        prop_assert_eq!(sa.is_disjoint(&sb), ma.is_disjoint(&mb));
    }

    #[test]
    fn remove_matches_model(v in elems(), removals in elems()) {
        let mut s = BitSet::from_iter(CAP, v.iter().copied());
        let mut m = model(&v);
        for r in removals {
            s.remove(r);
            m.remove(&r);
        }
        prop_assert_eq!(s.len(), m.len());
        for i in 0..CAP {
            prop_assert_eq!(s.contains(i), m.contains(&i));
        }
    }

    #[test]
    fn set_algebra_laws(a in elems(), b in elems(), c in elems()) {
        let sa = BitSet::from_iter(CAP, a.iter().copied());
        let sb = BitSet::from_iter(CAP, b.iter().copied());
        let sc = BitSet::from_iter(CAP, c.iter().copied());
        // Commutativity and associativity of intersection.
        prop_assert_eq!(sa.intersection(&sb), sb.intersection(&sa));
        prop_assert_eq!(
            sa.intersection(&sb).intersection(&sc),
            sa.intersection(&sb.intersection(&sc))
        );
        // De Morgan via difference: a − (b ∪ c) == (a − b) − c.
        prop_assert_eq!(sa.difference(&sb.union(&sc)), sa.difference(&sb).difference(&sc));
        // Subset relations.
        prop_assert!(sa.intersection(&sb).is_subset(&sa));
        prop_assert!(sa.is_subset(&sa.union(&sb)));
    }
}

/// Strategy producing a small random valid `BoolDataset`.
fn dataset() -> impl Strategy<Value = BoolDataset> {
    (2usize..5, 2usize..8, 2usize..12).prop_flat_map(|(n_classes, n_items, extra)| {
        let n_samples = n_classes + extra;
        let samples =
            prop::collection::vec(prop::collection::vec(0..n_items, 0..n_items), n_samples);
        // Guarantee every class non-empty: first n_classes samples get
        // labels 0..n_classes, the rest are random.
        let labels = prop::collection::vec(0..n_classes, n_samples - n_classes);
        (samples, labels).prop_map(move |(sample_items, tail_labels)| {
            let item_names = (0..n_items).map(|i| format!("g{i}")).collect();
            let class_names = (0..n_classes).map(|c| format!("class{c}")).collect();
            let sets = sample_items
                .iter()
                .map(|items| BitSet::from_iter(n_items, items.iter().copied()))
                .collect();
            let mut labels: Vec<usize> = (0..n_classes).collect();
            labels.extend(tail_labels);
            BoolDataset::new(item_names, class_names, sets, labels).unwrap()
        })
    })
}

proptest! {
    #[test]
    fn tsv_round_trips_any_dataset(d in dataset()) {
        let mut buf = Vec::new();
        io::write_bool_tsv(&d, &mut buf).unwrap();
        let back = io::read_bool_tsv(&buf[..]).unwrap();
        prop_assert_eq!(back.n_samples(), d.n_samples());
        prop_assert_eq!(back.labels(), d.labels());
        for s in 0..d.n_samples() {
            prop_assert_eq!(back.sample(s), d.sample(s));
        }
    }

    #[test]
    fn json_round_trips_any_dataset(d in dataset()) {
        let json = io::bool_to_json(&d);
        let back = io::bool_from_json(&json).unwrap();
        prop_assert_eq!(back.labels(), d.labels());
        for s in 0..d.n_samples() {
            prop_assert_eq!(back.sample(s), d.sample(s));
        }
    }

    #[test]
    fn subset_is_consistent(d in dataset(), idx in prop::collection::vec(0usize..100, 1..10)) {
        let ids: Vec<usize> = idx.into_iter().map(|i| i % d.n_samples()).collect();
        let sub = d.subset(&ids);
        prop_assert_eq!(sub.n_samples(), ids.len());
        for (k, &s) in ids.iter().enumerate() {
            prop_assert_eq!(sub.sample(k), d.sample(s));
            prop_assert_eq!(sub.label(k), d.label(s));
        }
    }
}
