//! Differential property tests pinning the SIMD popcount kernels to the
//! portable scalar fallback: for arbitrary word slices — including odd
//! lengths that leave 1–3 tail words outside the 4-word lane groups —
//! the dispatched path must produce exactly the portable path's counts,
//! and the [`microarray::BitSet`] operations built on them must agree
//! with a naive per-element reference.

use microarray::{simd, BitSet};
use proptest::prelude::*;

/// Word vectors whose length sweeps every `len % 4` residue, biased
/// toward extreme bit patterns (all-ones, all-zeros) where a lane-group
/// accumulator overflow bug would show first.
fn words() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u8..6, 0u64..=u64::MAX), 0..23).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, word)| match kind {
                0 => u64::MAX,
                1 => 0,
                _ => word,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The dispatched kernels equal the portable fallback word-for-word.
    #[test]
    fn dispatched_equals_portable((a, b) in (words(), words())) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assert_eq!(
            simd::intersection_len_words(a, b),
            simd::intersection_len_words_portable(a, b)
        );
        prop_assert_eq!(
            simd::andnot_len_words(a, b),
            simd::andnot_len_words_portable(a, b)
        );
        prop_assert_eq!(simd::count_words(a), simd::count_words_portable(a));
    }

    /// The fused store-and-count kernels equal the portable fallback in
    /// both their returned counts and every word they write.
    #[test]
    fn fused_dispatched_equals_portable((a, b) in (words(), words())) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);

        let mut d1 = vec![0u64; n];
        let mut d2 = vec![!0u64; n]; // different garbage: stores must overwrite
        prop_assert_eq!(
            simd::and_assign_count_words(&mut d1, a, b),
            simd::and_assign_count_words_portable(&mut d2, a, b)
        );
        prop_assert_eq!(&d1, &d2);

        let mut r1 = a.to_vec();
        let mut r2 = a.to_vec();
        let mut c1 = vec![0.5f64; n * 64];
        let mut c2 = vec![0.5f64; n * 64];
        let moved = simd::carve_scatter_words(&mut r1, b, &mut c1, 3.75);
        prop_assert_eq!(
            moved,
            simd::carve_scatter_words_portable(&mut r2, b, &mut c2, 3.75)
        );
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&c1, &c2);
        // The carve removes exactly the expr bits from remaining and
        // writes the value at exactly those indices.
        for i in 0..n {
            prop_assert_eq!(r1[i], a[i] & !b[i]);
            for bit in 0..64 {
                let want = if (a[i] & b[i]) >> bit & 1 == 1 { 3.75 } else { 0.5 };
                prop_assert_eq!(c1[i * 64 + bit], want);
            }
        }
    }

    /// BitSet popcount operations match a naive per-element reference at
    /// capacities that leave trailing partial words.
    #[test]
    fn bitset_counts_match_naive_reference(
        cap in 1usize..300,
        seed_a in 0u64..=u64::MAX,
        seed_b in 0u64..=u64::MAX,
    ) {
        let fill = |seed: u64| {
            let mut x = seed | 1;
            BitSet::from_iter(cap, (0..cap).filter(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 3 == 0
            }))
        };
        let a = fill(seed_a);
        let b = fill(seed_b);
        let naive_and = (0..cap).filter(|&i| a.contains(i) && b.contains(i)).count();
        let naive_andnot = (0..cap).filter(|&i| a.contains(i) && !b.contains(i)).count();
        let naive_len = (0..cap).filter(|&i| a.contains(i)).count();
        prop_assert_eq!(a.intersection_len(&b), naive_and);
        prop_assert_eq!(a.andnot_len(&b), naive_andnot);
        prop_assert_eq!(a.len(), naive_len);
        // Forcing the portable path mid-stream changes nothing but speed.
        simd::force_portable(true);
        let portable = (a.intersection_len(&b), a.andnot_len(&b), a.len());
        simd::force_portable(false);
        prop_assert_eq!(portable, (naive_and, naive_andnot, naive_len));
    }
}
