//! Property tests for the synthetic generator: determinism, shape, and
//! the statistical structure the DESIGN.md substitution argument rests on.

use microarray::synth::SynthConfig;
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SynthConfig> {
    (
        8usize..40, // genes
        2usize..5,  // markers per class
        (4usize..10, 4usize..10),
        0.0f64..0.4, // dropout
        0u64..1000,
    )
        .prop_map(|(n_genes, markers, (a, b), dropout, seed)| SynthConfig {
            name: "prop".into(),
            n_genes: n_genes.max(markers * 2 + 2),
            class_sizes: vec![a, b],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: markers,
            marker_shift: 2.0,
            marker_dropout: dropout,
            marker_modules: 2,
            wobble_rate: 0.1,
            marker_flip: 0.05,
            atypical_rate: 0.1,
            atypical_strength: 0.3,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generation is deterministic and matches the configured shape.
    #[test]
    fn deterministic_and_shaped(cfg in config()) {
        cfg.validate().unwrap();
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(a.n_genes(), cfg.n_genes);
        prop_assert_eq!(a.n_samples(), cfg.n_samples());
        prop_assert_eq!(a.class_sizes(), cfg.class_sizes.clone());
        for s in 0..a.n_samples() {
            prop_assert_eq!(a.row(s), b.row(s));
        }
    }

    /// All values are finite (discretization requires it).
    #[test]
    fn values_are_finite(cfg in config()) {
        let d = cfg.generate();
        for s in 0..d.n_samples() {
            prop_assert!(d.row(s).iter().all(|v| v.is_finite()));
        }
    }

    /// Marker genes separate their class in expectation: with zero
    /// dropout/noise the class-mean minus other-mean on the class's marker
    /// block is positive.
    #[test]
    fn markers_shift_the_right_class(cfg in config()) {
        let clean = SynthConfig {
            marker_dropout: 0.0,
            wobble_rate: 0.0,
            marker_flip: 0.0,
            atypical_rate: 0.0,
            marker_shift: 3.0,
            ..cfg
        };
        let d = clean.generate();
        let m = clean.markers_per_class;
        for class in 0..2 {
            let block: Vec<usize> = (class * m..(class + 1) * m).collect();
            let mean_of = |want: usize| -> f64 {
                let rows: Vec<usize> =
                    (0..d.n_samples()).filter(|&s| d.label(s) == want).collect();
                let mut acc = 0.0;
                for &s in &rows {
                    for &g in &block {
                        acc += d.value(s, g);
                    }
                }
                acc / (rows.len() * block.len()) as f64
            };
            prop_assert!(mean_of(class) > mean_of(1 - class) + 0.5,
                "class {class}: {} vs {}", mean_of(class), mean_of(1 - class));
        }
    }

    /// Different seeds produce different data (no accidental seed reuse).
    #[test]
    fn seeds_matter(cfg in config()) {
        let other = SynthConfig { seed: cfg.seed ^ 0xdead_beef, ..cfg.clone() };
        let a = cfg.generate();
        let b = other.generate();
        prop_assert_ne!(a.row(0), b.row(0));
    }

    /// scaled_down shrinks every dimension and stays valid.
    #[test]
    fn scaled_down_valid(cfg in config(), factor in 1usize..5) {
        let small = cfg.scaled_down(factor);
        small.validate().unwrap();
        prop_assert!(small.n_genes <= cfg.n_genes.max(8));
        prop_assert!(small.n_samples() <= cfg.n_samples().max(6));
    }
}
