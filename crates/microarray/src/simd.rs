//! SIMD popcount kernels for the word-packed set operations.
//!
//! Every hot loop in this codebase — BST construction, CAR mining, and
//! above all compiled BSTCE inference — reduces to "AND (or AND-NOT) two
//! `u64` slices and count the surviving bits". The portable form is one
//! `count_ones()` per word; without `-C target-cpu` that compiles to the
//! ~12-instruction SWAR sequence (baseline x86-64 has no `popcnt`), so the
//! satisfaction kernel spends most of its cycles counting bits one word at
//! a time.
//!
//! This module supplies explicit `core::arch` paths that process **four
//! mask words per lane-group** using the classic `vpshufb` nibble-LUT
//! popcount on AVX2 (each 256-bit vector holds 4 words; two table lookups
//! and a `vpsadbw` produce four 64-bit partial counts per group) and
//! `vcntq_u8` + widening pairwise adds on NEON. Where the host has
//! AVX-512 VPOPCNTDQ (Ice Lake+, Zen 4+) an eight-words-per-group tier
//! takes over: `vpopcntq` counts a whole 512-bit vector in one
//! instruction. The counts are integers, so lane-parallel accumulation is
//! exactly associative and the SIMD paths are **bit-identical** to the
//! portable fallback by construction — enforced anyway by the
//! differential proptests in `tests/prop_simd.rs` and
//! `crates/core/tests/prop_compiled.rs`.
//!
//! Besides the read-only count kernels, two *fused* kernels cut memory
//! passes out of the coverage sweep in compiled inference, where the
//! scalar assign/len/difference trio used to cost three passes over the
//! same words: [`and_assign_count_words`] (intersect, store, count in one
//! pass) and [`carve_scatter_words`] (the whole sweep step: carve the
//! `expr` bits out of `remaining`, count them, and write the step's cell
//! value at each carved index — with the carved set never materialized,
//! eliminating both its store stream and its re-scan pass).
//!
//! Dispatch is resolved once at runtime (`is_x86_feature_detected!`),
//! cached in an atomic, and overridable two ways:
//!
//! * `BSTC_FORCE_PORTABLE=1` in the environment (read at first use) — the
//!   CI leg that keeps the fallback exercised on AVX2 hosts;
//! * [`force_portable`] programmatically (tests and the benchmark's
//!   PR 5-baseline mode).
//!
//! Slices of any length are accepted: the vector body covers
//! `len - len % 4` words and the tail (0–3 words, including trailing
//! partially-filled mask words) finishes on the scalar path.

use std::sync::atomic::{AtomicU8, Ordering};

/// Resolved kernel path, cached in [`DISPATCH`].
const PATH_UNRESOLVED: u8 = 0;
const PATH_PORTABLE: u8 = 1;
const PATH_AVX2: u8 = 2;
const PATH_NEON: u8 = 3;
const PATH_AVX512: u8 = 4;

static DISPATCH: AtomicU8 = AtomicU8::new(PATH_UNRESOLVED);

/// When nonzero, [`resolve`] answers `PATH_PORTABLE` regardless of what
/// the host supports (and regardless of the cached detection).
static FORCED_PORTABLE: AtomicU8 = AtomicU8::new(0);

/// Forces (or releases) the portable scalar path at runtime.
///
/// Used by tests and benchmarks to pin the dispatch: `force_portable(true)`
/// makes every subsequent kernel call take the fallback, `false` restores
/// hardware detection. Affects performance only — both paths produce
/// identical counts.
pub fn force_portable(on: bool) {
    FORCED_PORTABLE.store(on as u8, Ordering::SeqCst);
}

/// Resolves (once) and returns the active path id.
#[inline]
fn resolve() -> u8 {
    if FORCED_PORTABLE.load(Ordering::Relaxed) != 0 {
        return PATH_PORTABLE;
    }
    let cached = DISPATCH.load(Ordering::Relaxed);
    if cached != PATH_UNRESOLVED {
        return cached;
    }
    let detected = detect();
    DISPATCH.store(detected, Ordering::Relaxed);
    detected
}

/// One-time hardware detection, honoring `BSTC_FORCE_PORTABLE`.
fn detect() -> u8 {
    if std::env::var_os("BSTC_FORCE_PORTABLE").is_some_and(|v| v != "0" && !v.is_empty()) {
        return PATH_PORTABLE;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // `vpopcntq` counts all eight words of a 512-bit lane-group in
        // one instruction — strictly better than the AVX2 nibble LUT
        // where available (Ice Lake+, Zen 4+).
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
        {
            return PATH_AVX512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return PATH_AVX2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is architecturally guaranteed on AArch64.
        return PATH_NEON;
    }
    #[allow(unreachable_code)]
    PATH_PORTABLE
}

/// Human-readable name of the path the next kernel call will take
/// (`"avx512"`, `"avx2"`, `"neon"`, or `"portable"`). Recorded in
/// benchmark reports.
pub fn active_path() -> &'static str {
    match resolve() {
        PATH_AVX512 => "avx512",
        PATH_AVX2 => "avx2",
        PATH_NEON => "neon",
        _ => "portable",
    }
}

/// `Σ popcount(a[i] & b[i])` over the common prefix of the two slices.
#[inline]
pub fn intersection_len_words(a: &[u64], b: &[u64]) -> usize {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        PATH_AVX512 => unsafe { avx512::and_len(a, b) },
        #[cfg(target_arch = "x86_64")]
        PATH_AVX2 => unsafe { avx2::and_len(a, b) },
        #[cfg(target_arch = "aarch64")]
        PATH_NEON => neon::and_len(a, b),
        _ => intersection_len_words_portable(a, b),
    }
}

/// `Σ popcount(a[i] & !b[i])` over the common prefix of the two slices.
#[inline]
pub fn andnot_len_words(a: &[u64], b: &[u64]) -> usize {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        PATH_AVX512 => unsafe { avx512::andnot_len(a, b) },
        #[cfg(target_arch = "x86_64")]
        PATH_AVX2 => unsafe { avx2::andnot_len(a, b) },
        #[cfg(target_arch = "aarch64")]
        PATH_NEON => neon::andnot_len(a, b),
        _ => andnot_len_words_portable(a, b),
    }
}

/// `Σ popcount(a[i])`.
#[inline]
pub fn count_words(a: &[u64]) -> usize {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        PATH_AVX512 => unsafe { avx512::count(a) },
        #[cfg(target_arch = "x86_64")]
        PATH_AVX2 => unsafe { avx2::count(a) },
        #[cfg(target_arch = "aarch64")]
        PATH_NEON => neon::count(a),
        _ => count_words_portable(a),
    }
}

/// Fused intersect-and-count: `dst[i] = a[i] & b[i]` over the common
/// prefix of all three slices, returning `Σ popcount(dst)`. One memory
/// pass where `assign` + `len` would take two.
#[inline]
pub fn and_assign_count_words(dst: &mut [u64], a: &[u64], b: &[u64]) -> usize {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        PATH_AVX512 => unsafe { avx512::and_assign_count(dst, a, b) },
        #[cfg(target_arch = "x86_64")]
        PATH_AVX2 => unsafe { avx2::and_assign_count(dst, a, b) },
        #[cfg(target_arch = "aarch64")]
        PATH_NEON => neon::and_assign_count(dst, a, b),
        _ => and_assign_count_words_portable(dst, a, b),
    }
}

/// Fused carve-and-scatter step of a coverage sweep, one memory pass
/// where assign + count + difference + a scan of the carved set would
/// take four: per word, `newly = remaining & expr` is formed in
/// registers, `remaining &= !expr` is stored back, and every set bit
/// `g` of `newly` writes `cells[g] = value` on the spot — the carved
/// set is never materialized. Returns `Σ popcount(newly)`.
///
/// Bit-identity is structural: the counts are exact integer popcounts
/// and the cell writes are plain stores to disjoint slots, so no float
/// *operation* order changes anywhere. Every set bit of
/// `remaining & expr` must index inside `cells` (bounds-checked —
/// callers uphold it via the `BitSet` invariant that bits past the
/// capacity are never set).
#[inline]
pub fn carve_scatter_words(
    remaining: &mut [u64],
    expr: &[u64],
    cells: &mut [f64],
    value: f64,
) -> usize {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        PATH_AVX512 => unsafe { avx512::carve_scatter(remaining, expr, cells, value) },
        #[cfg(target_arch = "x86_64")]
        PATH_AVX2 => unsafe { avx2::carve_scatter(remaining, expr, cells, value) },
        #[cfg(target_arch = "aarch64")]
        PATH_NEON => neon::carve_scatter(remaining, expr, cells, value),
        _ => carve_scatter_words_portable(remaining, expr, cells, value),
    }
}

/// Writes `value` at `cells[base + b]` for every set bit `b` of `word`.
/// The scalar scatter tail shared by every carve-scatter tier.
#[inline]
fn scatter_word(cells: &mut [f64], base: usize, mut word: u64, value: f64) {
    while word != 0 {
        cells[base + word.trailing_zeros() as usize] = value;
        word &= word - 1;
    }
}

/// The always-tested scalar fallback of [`intersection_len_words`].
#[doc(hidden)]
#[inline]
pub fn intersection_len_words_portable(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones() as usize).sum()
}

/// The always-tested scalar fallback of [`andnot_len_words`].
#[doc(hidden)]
#[inline]
pub fn andnot_len_words_portable(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).map(|(x, y)| (x & !y).count_ones() as usize).sum()
}

/// The always-tested scalar fallback of [`count_words`].
#[doc(hidden)]
#[inline]
pub fn count_words_portable(a: &[u64]) -> usize {
    a.iter().map(|x| x.count_ones() as usize).sum()
}

/// The always-tested scalar fallback of [`and_assign_count_words`].
#[doc(hidden)]
#[inline]
pub fn and_assign_count_words_portable(dst: &mut [u64], a: &[u64], b: &[u64]) -> usize {
    let mut total = 0usize;
    for (d, (x, y)) in dst.iter_mut().zip(a.iter().zip(b)) {
        let w = x & y;
        *d = w;
        total += w.count_ones() as usize;
    }
    total
}

/// The always-tested scalar fallback of [`carve_scatter_words`].
#[doc(hidden)]
#[inline]
pub fn carve_scatter_words_portable(
    remaining: &mut [u64],
    expr: &[u64],
    cells: &mut [f64],
    value: f64,
) -> usize {
    let mut total = 0usize;
    for (i, (r, e)) in remaining.iter_mut().zip(expr).enumerate() {
        let nw = *r & e;
        *r &= !e;
        if nw != 0 {
            total += nw.count_ones() as usize;
            scatter_word(cells, i * 64, nw, value);
        }
    }
    total
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! `vpshufb` nibble-LUT popcount: each 256-bit vector carries four
    //! mask words; low and high nibbles of every byte index a 16-entry
    //! bit-count table and `vpsadbw` horizontally folds the 32 byte
    //! counts into four 64-bit lane sums, which accumulate across the
    //! whole slice and are folded once at the end. ~6 instructions per
    //! 4 words versus ~12 per *word* for the SWAR fallback.

    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Popcount of one 256-bit vector as four 64-bit lane counts.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount256(v: __m256i, lut: __m256i, low_mask: __m256i) -> __m256i {
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
        let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Sums the four 64-bit lanes of an accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold(acc: __m256i) -> usize {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize
    }

    /// The byte-wise nibble population-count table, broadcast to both
    /// 128-bit halves.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn nibble_lut() -> __m256i {
        _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        )
    }

    macro_rules! binary_kernel {
        ($name:ident, $vop:expr, $sop:expr) => {
            /// # Safety
            /// Caller must ensure the host supports AVX2.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[u64], b: &[u64]) -> usize {
                let n = a.len().min(b.len());
                let lut = nibble_lut();
                let low_mask = _mm256_set1_epi8(0x0f);
                let mut acc = _mm256_setzero_si256();
                let body = n - n % 4;
                let mut i = 0;
                while i < body {
                    let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                    let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                    #[allow(clippy::redundant_closure_call)]
                    let v = $vop(va, vb);
                    acc = _mm256_add_epi64(acc, popcount256(v, lut, low_mask));
                    i += 4;
                }
                let mut total = fold(acc);
                while i < n {
                    #[allow(clippy::redundant_closure_call)]
                    let w: u64 = $sop(a[i], b[i]);
                    total += w.count_ones() as usize;
                    i += 1;
                }
                total
            }
        };
    }

    // `vpandn` computes `!first & second`, so the andnot vector op swaps
    // its operands to produce `x & !y`.
    binary_kernel!(and_len, |x, y| _mm256_and_si256(x, y), |x: u64, y: u64| x & y);
    binary_kernel!(andnot_len, |x, y| _mm256_andnot_si256(y, x), |x: u64, y: u64| x & !y);

    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn and_assign_count(dst: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        let n = dst.len().min(a.len()).min(b.len());
        let lut = nibble_lut();
        let low_mask = _mm256_set1_epi8(0x0f);
        let mut acc = _mm256_setzero_si256();
        let body = n - n % 4;
        let mut i = 0;
        while i < body {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
            let v = _mm256_and_si256(va, vb);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, v);
            acc = _mm256_add_epi64(acc, popcount256(v, lut, low_mask));
            i += 4;
        }
        let mut total = fold(acc);
        while i < n {
            let w = a[i] & b[i];
            dst[i] = w;
            total += w.count_ones() as usize;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn carve_scatter(
        remaining: &mut [u64],
        expr: &[u64],
        cells: &mut [f64],
        value: f64,
    ) -> usize {
        let n = remaining.len().min(expr.len());
        let lut = nibble_lut();
        let low_mask = _mm256_set1_epi8(0x0f);
        let mut acc = _mm256_setzero_si256();
        let body = n - n % 4;
        let mut i = 0;
        let mut buf = [0u64; 4];
        while i < body {
            let vr = _mm256_loadu_si256(remaining.as_ptr().add(i) as *const __m256i);
            let ve = _mm256_loadu_si256(expr.as_ptr().add(i) as *const __m256i);
            let vn = _mm256_and_si256(vr, ve);
            // `vpandn` is `!first & second`: expr first yields `r & !e`.
            _mm256_storeu_si256(
                remaining.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_andnot_si256(ve, vr),
            );
            // Coverage sweeps are sparse past the first out-sample, so
            // most groups carve nothing: `vptest` skips them without
            // ever leaving the vector domain.
            if _mm256_testz_si256(vn, vn) == 0 {
                acc = _mm256_add_epi64(acc, popcount256(vn, lut, low_mask));
                _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, vn);
                for (lane, &w) in buf.iter().enumerate() {
                    if w != 0 {
                        super::scatter_word(cells, (i + lane) * 64, w, value);
                    }
                }
            }
            i += 4;
        }
        let mut total = fold(acc);
        while i < n {
            let nw = remaining[i] & expr[i];
            remaining[i] &= !expr[i];
            if nw != 0 {
                total += nw.count_ones() as usize;
                super::scatter_word(cells, i * 64, nw, value);
            }
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count(a: &[u64]) -> usize {
        let n = a.len();
        let lut = nibble_lut();
        let low_mask = _mm256_set1_epi8(0x0f);
        let mut acc = _mm256_setzero_si256();
        let body = n - n % 4;
        let mut i = 0;
        while i < body {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount256(va, lut, low_mask));
            i += 4;
        }
        let mut total = fold(acc);
        while i < n {
            total += a[i].count_ones() as usize;
            i += 1;
        }
        total
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! AVX-512 VPOPCNTDQ popcount: `vpopcntq` counts each of the eight
    //! mask words in a 512-bit vector in one instruction, replacing the
    //! whole AVX2 nibble-LUT sequence; `vpreducesq`-style folding happens
    //! once at the end via `_mm512_reduce_add_epi64`. Loads and stores use
    //! the `epi64` forms, which take word pointers directly.

    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    macro_rules! binary_kernel {
        ($name:ident, $vop:expr, $sop:expr) => {
            /// # Safety
            /// Caller must ensure the host supports AVX-512F + VPOPCNTDQ.
            #[target_feature(enable = "avx512f,avx512vpopcntdq")]
            pub unsafe fn $name(a: &[u64], b: &[u64]) -> usize {
                let n = a.len().min(b.len());
                let mut acc = _mm512_setzero_si512();
                let body = n - n % 8;
                let mut i = 0;
                while i < body {
                    let va = _mm512_loadu_epi64(a.as_ptr().add(i) as *const i64);
                    let vb = _mm512_loadu_epi64(b.as_ptr().add(i) as *const i64);
                    #[allow(clippy::redundant_closure_call)]
                    let v = $vop(va, vb);
                    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
                    i += 8;
                }
                let mut total = _mm512_reduce_add_epi64(acc) as usize;
                while i < n {
                    #[allow(clippy::redundant_closure_call)]
                    let w: u64 = $sop(a[i], b[i]);
                    total += w.count_ones() as usize;
                    i += 1;
                }
                total
            }
        };
    }

    // As with AVX2, `vpandn` computes `!first & second`, so andnot swaps
    // its operands to produce `x & !y`.
    binary_kernel!(and_len, |x, y| _mm512_and_si512(x, y), |x: u64, y: u64| x & y);
    binary_kernel!(andnot_len, |x, y| _mm512_andnot_si512(y, x), |x: u64, y: u64| x & !y);

    /// # Safety
    /// Caller must ensure the host supports AVX-512F + VPOPCNTDQ.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn count(a: &[u64]) -> usize {
        let n = a.len();
        let mut acc = _mm512_setzero_si512();
        let body = n - n % 8;
        let mut i = 0;
        while i < body {
            let va = _mm512_loadu_epi64(a.as_ptr().add(i) as *const i64);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(va));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            total += a[i].count_ones() as usize;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure the host supports AVX-512F + VPOPCNTDQ.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn and_assign_count(dst: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        let n = dst.len().min(a.len()).min(b.len());
        let mut acc = _mm512_setzero_si512();
        let body = n - n % 8;
        let mut i = 0;
        while i < body {
            let va = _mm512_loadu_epi64(a.as_ptr().add(i) as *const i64);
            let vb = _mm512_loadu_epi64(b.as_ptr().add(i) as *const i64);
            let v = _mm512_and_si512(va, vb);
            _mm512_storeu_epi64(dst.as_mut_ptr().add(i) as *mut i64, v);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            let w = a[i] & b[i];
            dst[i] = w;
            total += w.count_ones() as usize;
            i += 1;
        }
        total
    }

    /// # Safety
    /// Caller must ensure the host supports AVX-512F + VPOPCNTDQ.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub unsafe fn carve_scatter(
        remaining: &mut [u64],
        expr: &[u64],
        cells: &mut [f64],
        value: f64,
    ) -> usize {
        let n = remaining.len().min(expr.len());
        let mut acc = _mm512_setzero_si512();
        let body = n - n % 8;
        let mut i = 0;
        let mut buf = [0u64; 8];
        while i < body {
            let vr = _mm512_loadu_epi64(remaining.as_ptr().add(i) as *const i64);
            let ve = _mm512_loadu_epi64(expr.as_ptr().add(i) as *const i64);
            let vn = _mm512_and_si512(vr, ve);
            _mm512_storeu_epi64(
                remaining.as_mut_ptr().add(i) as *mut i64,
                _mm512_andnot_si512(ve, vr),
            );
            // Sweeps are sparse past the first out-sample; `vptestmq`
            // yields the nonzero-lane mask, skipping empty groups and
            // then scattering only the lanes that carved something.
            let nz = _mm512_test_epi64_mask(vn, vn);
            if nz != 0 {
                acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(vn));
                _mm512_storeu_epi64(buf.as_mut_ptr() as *mut i64, vn);
                let mut lanes = nz as u32;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    super::scatter_word(cells, (i + lane) * 64, buf[lane], value);
                }
            }
            i += 8;
        }
        let mut total = _mm512_reduce_add_epi64(acc) as usize;
        while i < n {
            let nw = remaining[i] & expr[i];
            remaining[i] &= !expr[i];
            if nw != 0 {
                total += nw.count_ones() as usize;
                super::scatter_word(cells, i * 64, nw, value);
            }
            i += 1;
        }
        total
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON popcount: `vcntq_u8` counts bits per byte in one instruction;
    //! `vaddlvq_u8` folds the 16 byte counts of a 128-bit group (two mask
    //! words). Two vectors per iteration keep the four-words-per-group
    //! shape of the AVX2 path.

    use std::arch::aarch64::*;

    macro_rules! binary_kernel {
        ($name:ident, $vop:expr, $sop:expr) => {
            pub fn $name(a: &[u64], b: &[u64]) -> usize {
                let n = a.len().min(b.len());
                let body = n - n % 4;
                let mut total = 0usize;
                let mut i = 0;
                // SAFETY: NEON is architecturally guaranteed on AArch64 and
                // all loads stay inside the common prefix checked above.
                unsafe {
                    while i < body {
                        let a0 = vld1q_u64(a.as_ptr().add(i));
                        let b0 = vld1q_u64(b.as_ptr().add(i));
                        let a1 = vld1q_u64(a.as_ptr().add(i + 2));
                        let b1 = vld1q_u64(b.as_ptr().add(i + 2));
                        #[allow(clippy::redundant_closure_call)]
                        let v0 = $vop(a0, b0);
                        #[allow(clippy::redundant_closure_call)]
                        let v1 = $vop(a1, b1);
                        total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v0))) as usize;
                        total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v1))) as usize;
                        i += 4;
                    }
                }
                while i < n {
                    #[allow(clippy::redundant_closure_call)]
                    let w: u64 = $sop(a[i], b[i]);
                    total += w.count_ones() as usize;
                    i += 1;
                }
                total
            }
        };
    }

    binary_kernel!(and_len, |x, y| vandq_u64(x, y), |x: u64, y: u64| x & y);
    binary_kernel!(andnot_len, |x, y| vbicq_u64(x, y), |x: u64, y: u64| x & !y);

    /// `Σ popcount(a[i])` via `vcntq_u8`.
    pub fn count(a: &[u64]) -> usize {
        let n = a.len();
        let body = n - n % 2;
        let mut total = 0usize;
        let mut i = 0;
        // SAFETY: loads stay inside the slice.
        unsafe {
            while i < body {
                let v = vld1q_u64(a.as_ptr().add(i));
                total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))) as usize;
                i += 2;
            }
        }
        while i < n {
            total += a[i].count_ones() as usize;
            i += 1;
        }
        total
    }

    /// Fused intersect-store-count (see [`super::and_assign_count_words`]).
    pub fn and_assign_count(dst: &mut [u64], a: &[u64], b: &[u64]) -> usize {
        let n = dst.len().min(a.len()).min(b.len());
        let body = n - n % 2;
        let mut total = 0usize;
        let mut i = 0;
        // SAFETY: all accesses stay inside the common prefix.
        unsafe {
            while i < body {
                let va = vld1q_u64(a.as_ptr().add(i));
                let vb = vld1q_u64(b.as_ptr().add(i));
                let v = vandq_u64(va, vb);
                vst1q_u64(dst.as_mut_ptr().add(i), v);
                total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))) as usize;
                i += 2;
            }
        }
        while i < n {
            let w = a[i] & b[i];
            dst[i] = w;
            total += w.count_ones() as usize;
            i += 1;
        }
        total
    }

    /// Fused carve-and-scatter (see [`super::carve_scatter_words`]). The
    /// carved words come back to scalar registers for the scatter anyway,
    /// so the counts use `count_ones` on the extracted lanes rather than
    /// a vector popcount.
    pub fn carve_scatter(
        remaining: &mut [u64],
        expr: &[u64],
        cells: &mut [f64],
        value: f64,
    ) -> usize {
        let n = remaining.len().min(expr.len());
        let body = n - n % 2;
        let mut total = 0usize;
        let mut i = 0;
        // SAFETY: all accesses stay inside the common prefix.
        unsafe {
            while i < body {
                let vr = vld1q_u64(remaining.as_ptr().add(i));
                let ve = vld1q_u64(expr.as_ptr().add(i));
                let vn = vandq_u64(vr, ve);
                vst1q_u64(remaining.as_mut_ptr().add(i), vbicq_u64(vr, ve));
                let w0 = vgetq_lane_u64(vn, 0);
                let w1 = vgetq_lane_u64(vn, 1);
                if w0 != 0 {
                    total += w0.count_ones() as usize;
                    super::scatter_word(cells, i * 64, w0, value);
                }
                if w1 != 0 {
                    total += w1.count_ones() as usize;
                    super::scatter_word(cells, (i + 1) * 64, w1, value);
                }
                i += 2;
            }
        }
        while i < n {
            let nw = remaining[i] & expr[i];
            remaining[i] &= !expr[i];
            if nw != 0 {
                total += nw.count_ones() as usize;
                super::scatter_word(cells, i * 64, nw, value);
            }
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic word pattern that exercises dense, sparse, and
    /// boundary bytes.
    fn pattern(len: usize, salt: u64) -> Vec<u64> {
        let mut x = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..len)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                match i % 5 {
                    0 => x,
                    1 => u64::MAX,
                    2 => 0,
                    3 => x & 0x8000_0000_0000_0001,
                    _ => !x,
                }
            })
            .collect()
    }

    #[test]
    fn dispatched_kernels_match_portable_at_every_tail_length() {
        // 0..27 covers all `len % 8` residues several times, including
        // slices shorter than one lane-group on every tier.
        for len in 0..27 {
            for salt in 0..8 {
                let a = pattern(len, salt);
                let b = pattern(len, salt + 100);
                assert_eq!(
                    intersection_len_words(&a, &b),
                    intersection_len_words_portable(&a, &b),
                    "and len={len} salt={salt}"
                );
                assert_eq!(
                    andnot_len_words(&a, &b),
                    andnot_len_words_portable(&a, &b),
                    "andnot len={len} salt={salt}"
                );
                assert_eq!(count_words(&a), count_words_portable(&a), "count len={len}");
            }
        }
    }

    #[test]
    fn fused_kernels_match_portable_at_every_tail_length() {
        for len in 0..27 {
            for salt in 0..8 {
                let a = pattern(len, salt);
                let b = pattern(len, salt + 100);

                let mut d1 = vec![0u64; len];
                let mut d2 = vec![0xffu64; len]; // different garbage: stores must overwrite
                assert_eq!(
                    and_assign_count_words(&mut d1, &a, &b),
                    and_assign_count_words_portable(&mut d2, &a, &b),
                    "and_assign_count len={len} salt={salt}"
                );
                assert_eq!(d1, d2, "and_assign_count dst len={len} salt={salt}");

                let mut r1 = a.clone();
                let mut r2 = a.clone();
                let mut c1 = vec![7.5f64; len * 64];
                let mut c2 = vec![7.5f64; len * 64];
                assert_eq!(
                    carve_scatter_words(&mut r1, &b, &mut c1, 2.25),
                    carve_scatter_words_portable(&mut r2, &b, &mut c2, 2.25),
                    "carve len={len} salt={salt}"
                );
                assert_eq!(r1, r2, "carve remaining len={len} salt={salt}");
                assert_eq!(c1, c2, "carve cells len={len} salt={salt}");
            }
        }
    }

    #[test]
    fn carve_scatter_moves_expr_bits_into_cells() {
        // The carve moves exactly the expr bits out of remaining, writes
        // `value` at each moved index, and touches no other cell.
        let orig = pattern(23, 7);
        let expr = pattern(23, 8);
        let mut remaining = orig.clone();
        let mut cells = vec![0.0f64; 23 * 64];
        let moved = carve_scatter_words(&mut remaining, &expr, &mut cells, 1.25);
        let mut expect_moved = 0usize;
        for i in 0..23 {
            assert_eq!(remaining[i], orig[i] & !expr[i]);
            let nw = orig[i] & expr[i];
            expect_moved += nw.count_ones() as usize;
            for b in 0..64 {
                let want = if nw >> b & 1 == 1 { 1.25 } else { 0.0 };
                assert_eq!(cells[i * 64 + b], want, "cell ({i}, {b})");
            }
        }
        assert_eq!(moved, expect_moved);
        // A second carve with the same expr moves nothing.
        assert_eq!(carve_scatter_words(&mut remaining, &expr, &mut cells, 9.0), 0);
    }

    #[test]
    fn force_portable_switches_the_active_path() {
        let native = active_path();
        force_portable(true);
        assert_eq!(active_path(), "portable");
        // Counts are identical either way.
        let a = pattern(37, 1);
        let b = pattern(37, 2);
        let forced = (intersection_len_words(&a, &b), andnot_len_words(&a, &b));
        force_portable(false);
        assert_eq!(active_path(), native);
        let auto = (intersection_len_words(&a, &b), andnot_len_words(&a, &b));
        assert_eq!(forced, auto);
    }

    #[test]
    fn empty_and_single_word_slices() {
        assert_eq!(intersection_len_words(&[], &[]), 0);
        assert_eq!(andnot_len_words(&[], &[]), 0);
        assert_eq!(count_words(&[]), 0);
        assert_eq!(intersection_len_words(&[u64::MAX], &[u64::MAX]), 64);
        assert_eq!(andnot_len_words(&[u64::MAX], &[0]), 64);
        assert_eq!(count_words(&[0x5555_5555_5555_5555]), 32);
    }
}
