//! Fixtures reproducing the paper's running example (Table 1) and the
//! worked BSTC query of §5.4.

use crate::bitset::BitSet;
use crate::dataset::BoolDataset;

/// The Table 1 running example.
///
/// Five samples over genes `g1..g6`:
///
/// | sample | expressed genes  | class   |
/// |--------|------------------|---------|
/// | s1     | g1, g2, g3, g5   | Cancer  |
/// | s2     | g1, g3, g6       | Cancer  |
/// | s3     | g2, g4, g6       | Cancer  |
/// | s4     | g2, g3, g5       | Healthy |
/// | s5     | g3, g4, g5, g6   | Healthy |
///
/// Class 0 is `Cancer`, class 1 is `Healthy`; item `g_k` has id `k - 1`.
pub fn table1() -> BoolDataset {
    let items = (1..=6).map(|k| format!("g{k}")).collect();
    let classes = vec!["Cancer".to_string(), "Healthy".to_string()];
    let samples = vec![
        BitSet::from_iter(6, [0, 1, 2, 4]), // s1
        BitSet::from_iter(6, [0, 2, 5]),    // s2
        BitSet::from_iter(6, [1, 3, 5]),    // s3
        BitSet::from_iter(6, [1, 2, 4]),    // s4
        BitSet::from_iter(6, [2, 3, 4, 5]), // s5
    ];
    BoolDataset::new(items, classes, samples, vec![0, 0, 0, 1, 1])
        .expect("the Table 1 fixture is valid by construction")
}

/// The §5.4 worked query: `Q = {g1, g4, g5 expressed}`.
///
/// The paper evaluates this query to a Cancer classification value of 3/4
/// and a Healthy value of 3/8, classifying it as Cancer.
pub fn section54_query() -> BitSet {
    BitSet::from_iter(6, [0, 3, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let d = table1();
        assert_eq!(d.n_samples(), 5);
        assert_eq!(d.n_items(), 6);
        assert_eq!(d.class_names(), &["Cancer".to_string(), "Healthy".to_string()]);
        assert_eq!(d.class_members(0), vec![0, 1, 2]);
        assert_eq!(d.class_members(1), vec![3, 4]);
        // Spot-check a few cells of Table 1.
        assert!(d.expresses(0, 0)); // s1 expresses g1
        assert!(!d.expresses(0, 3)); // s1 does not express g4
        assert!(d.expresses(4, 5)); // s5 expresses g6
        assert!(d.duplicate_samples().is_empty());
    }

    #[test]
    fn query_matches_section_5_4() {
        let q = section54_query();
        assert_eq!(q.to_vec(), vec![0, 3, 4]); // g1, g4, g5
    }
}
