//! [`ColumnSource`] — the streaming abstraction chunked training runs on.
//!
//! `Discretizer::fit` and binarization consume the expression matrix
//! one gene column at a time; nothing in the algorithm needs the whole
//! matrix resident. This trait is that access pattern made explicit:
//! implementors hand out one column on demand and (optionally) accept
//! an eviction hint once a chunk of columns has been consumed. The
//! in-memory [`ContinuousDataset`] implements it by gathering across
//! rows; the mmap-backed [`BmxDataset`] implements it as a contiguous
//! copy plus a real `madvise` eviction — which is what lets a training
//! run hold RSS at the chunk budget while the file is 10× larger.

use crate::bmx::BmxDataset;
use crate::dataset::{ClassId, ContinuousDataset, SampleId};
use std::ops::Range;

/// Column-streaming read access to a labeled expression matrix.
pub trait ColumnSource {
    /// Number of gene columns.
    fn n_genes(&self) -> usize;
    /// Number of samples.
    fn n_samples(&self) -> usize;
    /// Number of classes.
    fn n_classes(&self) -> usize;
    /// Gene display names, indexed by column.
    fn gene_names(&self) -> &[String];
    /// Class display names.
    fn class_names(&self) -> &[String];
    /// Labels, indexed by sample.
    fn labels(&self) -> &[ClassId];
    /// Copies gene column `g` into `out` (resized to the sample count).
    fn column_into(&self, g: usize, out: &mut Vec<f64>);
    /// Hints that columns `genes` will not be touched again soon.
    /// Advisory: the default does nothing; mmap-backed sources release
    /// the resident pages.
    fn evict_hint(&self, genes: Range<usize>) {
        let _ = genes;
    }
}

impl ColumnSource for ContinuousDataset {
    fn n_genes(&self) -> usize {
        ContinuousDataset::n_genes(self)
    }

    fn n_samples(&self) -> usize {
        ContinuousDataset::n_samples(self)
    }

    fn n_classes(&self) -> usize {
        ContinuousDataset::n_classes(self)
    }

    fn gene_names(&self) -> &[String] {
        ContinuousDataset::gene_names(self)
    }

    fn class_names(&self) -> &[String] {
        ContinuousDataset::class_names(self)
    }

    fn labels(&self) -> &[ClassId] {
        ContinuousDataset::labels(self)
    }

    fn column_into(&self, g: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..ContinuousDataset::n_samples(self)).map(|s| self.value(s, g)));
    }
}

impl ColumnSource for BmxDataset {
    fn n_genes(&self) -> usize {
        BmxDataset::n_genes(self)
    }

    fn n_samples(&self) -> usize {
        BmxDataset::n_samples(self)
    }

    fn n_classes(&self) -> usize {
        BmxDataset::n_classes(self)
    }

    fn gene_names(&self) -> &[String] {
        BmxDataset::gene_names(self)
    }

    fn class_names(&self) -> &[String] {
        BmxDataset::class_names(self)
    }

    fn labels(&self) -> &[ClassId] {
        BmxDataset::labels(self)
    }

    fn column_into(&self, g: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.column(g));
    }

    fn evict_hint(&self, genes: Range<usize>) {
        self.evict(genes);
    }
}

/// A sample-subset view over any [`ColumnSource`] — how CV splits train
/// on part of an on-disk dataset without materializing it. Columns are
/// gathered through the subset's sample ids; eviction hints pass
/// through to the underlying source.
pub struct SubsetView<'a, S: ColumnSource> {
    source: &'a S,
    sample_ids: Vec<SampleId>,
    labels: Vec<ClassId>,
}

impl<'a, S: ColumnSource> SubsetView<'a, S> {
    /// A view of `source` restricted to `sample_ids`, in that order.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn new(source: &'a S, sample_ids: Vec<SampleId>) -> SubsetView<'a, S> {
        let full_labels = source.labels();
        let labels = sample_ids.iter().map(|&s| full_labels[s]).collect();
        SubsetView { source, sample_ids, labels }
    }
}

impl<S: ColumnSource> ColumnSource for SubsetView<'_, S> {
    fn n_genes(&self) -> usize {
        self.source.n_genes()
    }

    fn n_samples(&self) -> usize {
        self.sample_ids.len()
    }

    fn n_classes(&self) -> usize {
        self.source.n_classes()
    }

    fn gene_names(&self) -> &[String] {
        self.source.gene_names()
    }

    fn class_names(&self) -> &[String] {
        self.source.class_names()
    }

    fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    fn column_into(&self, g: usize, out: &mut Vec<f64>) {
        let mut full = Vec::new();
        self.source.column_into(g, &mut full);
        out.clear();
        out.extend(self.sample_ids.iter().map(|&s| full[s]));
    }

    fn evict_hint(&self, genes: Range<usize>) {
        self.source.evict_hint(genes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ContinuousDataset {
        ContinuousDataset::new(
            vec!["g1".into(), "g2".into()],
            vec!["A".into(), "B".into()],
            vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            vec![0, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn continuous_dataset_streams_its_columns() {
        let d = toy();
        let mut col = Vec::new();
        ColumnSource::column_into(&d, 1, &mut col);
        assert_eq!(col, vec![10.0, 20.0, 30.0]);
        assert_eq!(ColumnSource::n_genes(&d), 2);
        d.evict_hint(0..2); // default no-op must be callable
    }

    #[test]
    fn subset_view_gathers_and_relabels() {
        let d = toy();
        let v = SubsetView::new(&d, vec![2, 0]);
        assert_eq!(v.n_samples(), 2);
        assert_eq!(v.labels(), &[1, 0]);
        let mut col = Vec::new();
        v.column_into(0, &mut col);
        assert_eq!(col, vec![3.0, 1.0]);
    }
}
