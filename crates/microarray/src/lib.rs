//! # microarray — the data substrate for the BSTC reproduction
//!
//! This crate provides everything below the classifiers:
//!
//! * [`bitset::BitSet`] — dense fixed-capacity sets, the representation of
//!   a sample's expressed items;
//! * [`dataset::BoolDataset`] — the paper's relational discretized
//!   representation (Table 1): samples as item sets plus class labels;
//! * [`dataset::ContinuousDataset`] — raw expression matrices feeding the
//!   `discretize` crate;
//! * [`io`] — self-describing TSV and JSON formats;
//! * [`bmx`] — the `#bmx v1` columnar binary format plus its mmap-backed
//!   reader, the out-of-core path for matrices too large to materialize;
//! * [`source::ColumnSource`] — the column-streaming access trait chunked
//!   training consumes (implemented by both dataset kinds);
//! * [`synth`] — the planted-marker generator substituting for the paper's
//!   four real datasets (see DESIGN.md §2), with presets matching Table 2;
//! * [`fixtures`] — the Table 1 running example and §5.4 query used by the
//!   golden tests throughout the workspace.
//!
//! ```
//! use microarray::fixtures::table1;
//!
//! let data = table1();
//! assert_eq!(data.n_samples(), 5);
//! assert_eq!(data.class_names(), &["Cancer".to_string(), "Healthy".to_string()]);
//! assert!(data.expresses(0, 0)); // s1 expresses g1
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod bmx;
pub mod dataset;
pub mod fixtures;
pub mod io;
pub mod mmap;
pub mod simd;
pub mod source;
pub mod synth;

pub use bitset::BitSet;
pub use bmx::{write_bmx, BmxDataset, BmxWriter};
pub use dataset::{BoolDataset, ClassId, ContinuousDataset, DatasetError, ItemId, SampleId};
pub use source::{ColumnSource, SubsetView};
