//! `#bmx v1` — a columnar, mmap-friendly binary expression-matrix format.
//!
//! The TSV/JSON formats materialize the whole matrix in memory on both
//! ends; at the scale the paper calls "scalable" (millions of samples)
//! that is the bottleneck. `.bmx` lays the matrix out **per-gene
//! contiguous** so training — which consumes one gene column at a time
//! (MDL cut search, binarization) — can memory-map the file and stream
//! columns under a fixed byte budget, evicting consumed pages as it
//! goes. All integers and floats are little-endian; the reader refuses
//! big-endian hosts rather than silently byte-swapping.
//!
//! ```text
//! offset  0  8 bytes   magic "#bmx v1\n"
//! offset  8  u64       FNV-1a 64 checksum over bytes 16..EOF
//! offset 16  u64 × 4   n_genes, n_samples, n_classes, names_len
//! offset 48  names     n_classes class names then n_genes gene names,
//!                      each '\n'-terminated UTF-8 (names_len bytes),
//!                      zero-padded to the next 8-byte boundary
//! ...        labels    n_samples × u32, zero-padded to 8 bytes
//! ...        columns   n_genes columns × n_samples × f64, contiguous
//! ```
//!
//! The label block and every column start 8-byte aligned (the header is
//! 48 bytes and both variable blocks pad to 8), so a page-aligned mmap
//! lets columns be read directly as `&[f64]` without copying.
//!
//! Integrity follows the `ModelBundle` convention: an FNV-1a 64
//! checksum over everything after the checksum field, verified on open
//! **by streaming the file through a small buffer** — not through the
//! map — so verification itself never inflates resident memory. The
//! same pass rejects non-finite expression values, closing the same
//! hole the TSV reader closes: a NaN/inf that reaches the MDL cut
//! search would poison it far from the input.

use crate::dataset::{ClassId, ContinuousDataset, DatasetError};
use crate::io::IoError;
use crate::mmap::Mmap;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"#bmx v1\n";

/// FNV-1a 64 running state (same constants as `serve`'s ModelBundle).
#[derive(Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn pad8(len: usize) -> usize {
    (8 - len % 8) % 8
}

fn invalid(message: impl Into<String>) -> IoError {
    IoError::Parse { line: 0, message: message.into() }
}

/// Incremental `.bmx` writer: header and labels up front, then exactly
/// `n_genes` calls to [`BmxWriter::write_column`] (the file layout *is*
/// column-major, so a generator producing one column at a time writes
/// straight through with one column of buffering), then
/// [`BmxWriter::finish`] to seal the checksum.
pub struct BmxWriter {
    w: BufWriter<File>,
    hash: Fnv1a,
    n_genes: usize,
    n_samples: usize,
    cols_written: usize,
}

impl BmxWriter {
    /// Creates `path` and writes the header, name table, and labels.
    ///
    /// Names must not contain `'\n'` (the in-file terminator); labels
    /// must index into `class_names`. Sample count is fixed by
    /// `labels.len()`.
    pub fn create(
        path: &Path,
        gene_names: &[String],
        class_names: &[String],
        labels: &[ClassId],
    ) -> Result<BmxWriter, IoError> {
        if cfg!(target_endian = "big") {
            return Err(invalid("bmx files are little-endian; big-endian hosts unsupported"));
        }
        if gene_names.is_empty() || labels.is_empty() {
            return Err(IoError::Invalid(DatasetError::Empty));
        }
        for name in gene_names.iter().chain(class_names) {
            if name.contains('\n') {
                return Err(invalid(format!("name '{}' contains a newline", name.escape_debug())));
            }
        }
        for (s, &c) in labels.iter().enumerate() {
            if c >= class_names.len() {
                return Err(IoError::Invalid(DatasetError::ClassOutOfRange {
                    sample: s,
                    class: c,
                    n_classes: class_names.len(),
                }));
            }
        }
        let mut names = Vec::new();
        for name in class_names.iter().chain(gene_names) {
            names.extend_from_slice(name.as_bytes());
            names.push(b'\n');
        }

        let file = File::create(path)?;
        let mut w = BmxWriter {
            w: BufWriter::with_capacity(1 << 20, file),
            hash: Fnv1a::new(),
            n_genes: gene_names.len(),
            n_samples: labels.len(),
            cols_written: 0,
        };
        w.w.write_all(MAGIC)?;
        w.w.write_all(&[0u8; 8])?; // checksum placeholder, sealed by finish()
        for v in [
            gene_names.len() as u64,
            labels.len() as u64,
            class_names.len() as u64,
            names.len() as u64,
        ] {
            w.put(&v.to_le_bytes())?;
        }
        w.put(&names)?;
        w.put(&vec![0u8; pad8(names.len())])?;
        for &l in labels {
            w.put(&(l as u32).to_le_bytes())?;
        }
        w.put(&vec![0u8; pad8(labels.len() * 4)])?;
        Ok(w)
    }

    /// Writes into the checksummed body, keeping the running hash current.
    fn put(&mut self, bytes: &[u8]) -> Result<(), IoError> {
        self.hash.update(bytes);
        self.w.write_all(bytes)?;
        Ok(())
    }

    /// Appends the next gene column (`values.len()` must equal the
    /// sample count). Rejects non-finite values so a `.bmx` can never
    /// carry the NaN/inf poison the TSV reader also refuses.
    pub fn write_column(&mut self, values: &[f64]) -> Result<(), IoError> {
        assert_eq!(values.len(), self.n_samples, "column length != sample count");
        assert!(self.cols_written < self.n_genes, "more columns than declared genes");
        for (s, v) in values.iter().enumerate() {
            if !v.is_finite() {
                return Err(invalid(format!(
                    "non-finite expression value {v} at sample {s}, gene column {}",
                    self.cols_written
                )));
            }
        }
        // One bulk pass: hash and write the column as raw LE bytes.
        let mut buf = Vec::with_capacity(values.len() * 8);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.put(&buf)?;
        self.cols_written += 1;
        Ok(())
    }

    /// Seals the checksum and flushes. Fails if fewer columns than
    /// declared genes were written.
    pub fn finish(self) -> Result<(), IoError> {
        assert_eq!(self.cols_written, self.n_genes, "missing gene columns");
        let hash = self.hash.0;
        let mut file = self.w.into_inner().map_err(|e| IoError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(8))?;
        file.write_all(&hash.to_le_bytes())?;
        file.sync_all()?;
        Ok(())
    }
}

/// Writes an in-memory [`ContinuousDataset`] as `.bmx` (transposing
/// row-major storage to the on-disk column order).
pub fn write_bmx(dataset: &ContinuousDataset, path: &Path) -> Result<(), IoError> {
    let mut w =
        BmxWriter::create(path, dataset.gene_names(), dataset.class_names(), dataset.labels())?;
    let mut column = vec![0.0f64; dataset.n_samples()];
    for g in 0..dataset.n_genes() {
        for (s, slot) in column.iter_mut().enumerate() {
            *slot = dataset.value(s, g);
        }
        w.write_column(&column)?;
    }
    w.finish()
}

/// A `.bmx` dataset opened as a read-only memory map.
///
/// The name table and labels are decoded eagerly (they are small); the
/// expression matrix stays on disk and pages in column-by-column as
/// [`BmxDataset::column`] touches it. [`BmxDataset::evict`] hands
/// consumed columns back to the kernel, which is what keeps chunked
/// training's resident set bounded by the chunk budget rather than the
/// file size.
pub struct BmxDataset {
    map: Mmap,
    gene_names: Vec<String>,
    class_names: Vec<String>,
    labels: Vec<ClassId>,
    /// Byte offset of the first column in the map (8-aligned).
    data_off: usize,
    /// Header checksum, verified (or vouched for) at open time.
    checksum: u64,
}

impl BmxDataset {
    /// Opens and verifies `path`.
    ///
    /// Verification streams the file once through a 1 MiB buffer —
    /// checking the FNV-1a checksum *and* that every expression value
    /// is finite — so a corrupt, truncated, or poisoned file is
    /// rejected before any of it is trusted, and the verification pass
    /// itself adds nothing to resident memory.
    pub fn open(path: &Path) -> Result<BmxDataset, IoError> {
        Self::open_inner(path, None)
    }

    /// Opens `path` without re-streaming the payload, trusting that a
    /// parent process already ran the full [`BmxDataset::open`]
    /// verification on the same file and obtained `expected_checksum`
    /// from [`BmxDataset::checksum`].
    ///
    /// Only the header is checked: its stored checksum must equal
    /// `expected_checksum` (so a swapped or regenerated file is still
    /// rejected), and the structural invariants — magic, declared
    /// sizes vs. file length, name table, label range — are validated
    /// as usual. The O(file) checksum + finiteness pass is skipped;
    /// that is the point, and why this is only safe downstream of a
    /// verifying parent on the same filesystem.
    pub fn open_trusted(path: &Path, expected_checksum: u64) -> Result<BmxDataset, IoError> {
        Self::open_inner(path, Some(expected_checksum))
    }

    fn open_inner(path: &Path, trusted: Option<u64>) -> Result<BmxDataset, IoError> {
        if cfg!(target_endian = "big") {
            return Err(invalid("bmx files are little-endian; big-endian hosts unsupported"));
        }
        let mut file = File::open(path)?;

        // --- header ------------------------------------------------------
        let mut head = [0u8; 48];
        file.read_exact(&mut head).map_err(|_| invalid("file shorter than the bmx header"))?;
        if &head[..8] != MAGIC {
            return Err(invalid("missing '#bmx v1' magic"));
        }
        let stored_hash = u64::from_le_bytes(head[8..16].try_into().unwrap());
        let word = |i: usize| u64::from_le_bytes(head[16 + i * 8..24 + i * 8].try_into().unwrap());
        let (n_genes, n_samples, n_classes, names_len) =
            (word(0) as usize, word(1) as usize, word(2) as usize, word(3) as usize);
        if n_genes == 0 || n_samples == 0 {
            return Err(IoError::Invalid(DatasetError::Empty));
        }

        let names_end = 48 + names_len + pad8(names_len);
        let labels_end = names_end + n_samples * 4 + pad8(n_samples * 4);
        let expected_len = labels_end + n_genes * n_samples * 8;
        let actual_len = file.metadata()?.len();
        if actual_len != expected_len as u64 {
            return Err(invalid(format!(
                "file is {actual_len} bytes, header declares {expected_len} \
                 ({n_genes} genes × {n_samples} samples)"
            )));
        }

        // --- single streaming pass: checksum + finiteness ---------------
        // head[16..48] is already in memory; stream the rest through a
        // bounded buffer. Every block after offset 48 is padded to 8
        // bytes and the buffer is a multiple of 8, so with full reads
        // every f64 sits whole inside one buffer fill.
        //
        // A trusted open compares the stored checksum against the
        // parent-supplied one instead of recomputing it, skipping the
        // whole O(file) pass.
        if let Some(expected) = trusted {
            if stored_hash != expected {
                return Err(invalid(format!(
                    "checksum handoff mismatch: header stores {stored_hash:#018x}, \
                     parent verified {expected:#018x} — file changed since verification"
                )));
            }
            return Self::decode_blocks(
                file,
                n_genes,
                n_samples,
                n_classes,
                names_len,
                stored_hash,
            );
        }
        let mut hash = Fnv1a::new();
        hash.update(&head[16..]);
        let mut buf = vec![0u8; 1 << 20];
        let mut pos = 48usize;
        while pos < expected_len {
            let n = buf.len().min(expected_len - pos);
            file.read_exact(&mut buf[..n])?;
            hash.update(&buf[..n]);
            let chunk_end = pos + n;
            if chunk_end > labels_end {
                let from = labels_end.saturating_sub(pos);
                for (i, window) in buf[from..n].chunks_exact(8).enumerate() {
                    let v = f64::from_le_bytes(window.try_into().unwrap());
                    if !v.is_finite() {
                        let idx = (pos + from - labels_end) / 8 + i;
                        return Err(invalid(format!(
                            "non-finite expression value {v} for gene column {} (sample {})",
                            idx / n_samples,
                            idx % n_samples,
                        )));
                    }
                }
            }
            pos = chunk_end;
        }
        if hash.0 != stored_hash {
            return Err(invalid(format!(
                "checksum mismatch: stored {stored_hash:#018x}, computed {:#018x}",
                hash.0
            )));
        }

        Self::decode_blocks(file, n_genes, n_samples, n_classes, names_len, stored_hash)
    }

    /// Decodes the name/label blocks and maps the matrix; shared tail of
    /// the verified and trusted open paths.
    fn decode_blocks(
        file: File,
        n_genes: usize,
        n_samples: usize,
        n_classes: usize,
        names_len: usize,
        checksum: u64,
    ) -> Result<BmxDataset, IoError> {
        let names_end = 48 + names_len + pad8(names_len);
        let labels_end = names_end + n_samples * 4 + pad8(n_samples * 4);
        let map = Mmap::map_readonly(&file)?;
        let bytes = map.as_slice();
        let names_blob = std::str::from_utf8(&bytes[48..48 + names_len])
            .map_err(|_| invalid("name table is not UTF-8"))?;
        let mut names = names_blob.split_terminator('\n');
        let class_names: Vec<String> = names.by_ref().take(n_classes).map(str::to_owned).collect();
        let gene_names: Vec<String> = names.by_ref().take(n_genes).map(str::to_owned).collect();
        if class_names.len() != n_classes || gene_names.len() != n_genes || names.next().is_some() {
            return Err(invalid("name table entry count does not match the header"));
        }
        let labels: Vec<ClassId> = bytes[names_end..names_end + n_samples * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()) as ClassId)
            .collect();
        for (s, &c) in labels.iter().enumerate() {
            if c >= n_classes {
                return Err(IoError::Invalid(DatasetError::ClassOutOfRange {
                    sample: s,
                    class: c,
                    n_classes,
                }));
            }
        }
        Ok(BmxDataset { map, gene_names, class_names, labels, data_off: labels_end, checksum })
    }

    /// The file's FNV-1a 64 checksum as stored in (and, for
    /// [`BmxDataset::open`], verified against) the header. Hand this to
    /// [`BmxDataset::open_trusted`] in a child process to skip its
    /// re-verification pass.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Number of genes (columns).
    pub fn n_genes(&self) -> usize {
        self.gene_names.len()
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Gene display names.
    pub fn gene_names(&self) -> &[String] {
        &self.gene_names
    }

    /// Class display names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// All labels, indexed by sample.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Gene column `g` directly out of the map — zero-copy. Touching it
    /// faults its pages in; pair with [`BmxDataset::evict`] when
    /// streaming.
    pub fn column(&self, g: usize) -> &[f64] {
        assert!(g < self.n_genes(), "gene {g} out of range");
        let start = self.data_off + g * self.n_samples() * 8;
        let bytes = &self.map.as_slice()[start..start + self.n_samples() * 8];
        // SAFETY: the mapping is page-aligned and data_off plus any
        // whole-column offset is a multiple of 8 (both variable-length
        // blocks are padded), so the pointer is aligned for f64; the
        // length was validated against the file size in open().
        unsafe {
            debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<f64>(), 0);
            std::slice::from_raw_parts(bytes.as_ptr() as *const f64, self.n_samples())
        }
    }

    /// Releases the resident pages of gene columns `genes` back to the
    /// kernel (advisory; see [`Mmap::advise_dontneed`]).
    pub fn evict(&self, genes: std::ops::Range<usize>) {
        let row = self.n_samples() * 8;
        let start = self.data_off + genes.start.min(self.n_genes()) * row;
        let len = genes.len().min(self.n_genes()) * row;
        self.map.advise_dontneed(start, len);
    }

    /// Materializes the whole matrix as an in-memory
    /// [`ContinuousDataset`] (for tests and small files).
    pub fn to_continuous(&self) -> Result<ContinuousDataset, DatasetError> {
        let mut values = vec![vec![0.0f64; self.n_genes()]; self.n_samples()];
        for g in 0..self.n_genes() {
            for (row, &v) in values.iter_mut().zip(self.column(g)) {
                row[g] = v;
            }
        }
        ContinuousDataset::new(
            self.gene_names.clone(),
            self.class_names.clone(),
            values,
            self.labels.clone(),
        )
    }
}

impl std::fmt::Debug for BmxDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BmxDataset")
            .field("n_genes", &self.n_genes())
            .field("n_samples", &self.n_samples())
            .field("n_classes", &self.n_classes())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bstc_bmx_{}_{name}.bmx", std::process::id()))
    }

    fn toy() -> ContinuousDataset {
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into(), "gC".into()],
            vec!["neg".into(), "pos".into()],
            vec![vec![1.0, 5.0, 2.0], vec![1.2, 3.0, 2.2], vec![9.0, 5.1, 8.1]],
            vec![0, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        let path = tmp("roundtrip");
        let d = toy();
        write_bmx(&d, &path).unwrap();
        let bmx = BmxDataset::open(&path).unwrap();
        assert_eq!(bmx.gene_names(), d.gene_names());
        assert_eq!(bmx.class_names(), d.class_names());
        assert_eq!(bmx.labels(), d.labels());
        for g in 0..d.n_genes() {
            for s in 0..d.n_samples() {
                assert_eq!(bmx.column(g)[s].to_bits(), d.value(s, g).to_bits());
            }
        }
        let back = bmx.to_continuous().unwrap();
        for s in 0..d.n_samples() {
            assert_eq!(back.row(s), d.row(s));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_does_not_disturb_data() {
        let path = tmp("evict");
        let d = toy();
        write_bmx(&d, &path).unwrap();
        let bmx = BmxDataset::open(&path).unwrap();
        let before: Vec<f64> = bmx.column(1).to_vec();
        bmx.evict(0..bmx.n_genes());
        assert_eq!(bmx.column(1), &before[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trusted_open_honors_the_handoff_checksum() {
        let path = tmp("trusted");
        let d = toy();
        write_bmx(&d, &path).unwrap();
        let verified = BmxDataset::open(&path).unwrap();
        let token = verified.checksum();

        // The right token opens without the O(file) pass and reads the
        // same data.
        let bmx = BmxDataset::open_trusted(&path, token).unwrap();
        assert_eq!(bmx.checksum(), token);
        assert_eq!(bmx.labels(), d.labels());
        for g in 0..d.n_genes() {
            assert_eq!(bmx.column(g), verified.column(g));
        }

        // A stale token (file regenerated since the parent verified)
        // is rejected even though the file itself is self-consistent.
        let err = BmxDataset::open_trusted(&path, token ^ 1).unwrap_err();
        assert!(err.to_string().contains("checksum handoff mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let path = tmp("corrupt");
        write_bmx(&toy(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = BmxDataset::open(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let path = tmp("trunc");
        write_bmx(&toy(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        let err = BmxDataset::open(&path).unwrap_err();
        assert!(err.to_string().contains("header declares"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_non_finite_values() {
        let path = tmp("nonfinite");
        let mut w =
            BmxWriter::create(&path, &["g1".into(), "g2".into()], &["A".into()], &[0, 0]).unwrap();
        w.write_column(&[1.0, 2.0]).unwrap();
        let err = w.write_column(&[f64::NAN, 2.0]).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hand_crafted_non_finite_is_rejected_on_open() {
        // A writer bug or hand-built file could smuggle a NaN past the
        // write_column guard; the open() verification pass still
        // catches it (after re-sealing a valid checksum).
        let path = tmp("smuggle");
        write_bmx(&toy(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&f64::INFINITY.to_le_bytes());
        let mut hash = Fnv1a::new();
        hash.update(&bytes[16..]);
        let hash = hash.0.to_le_bytes();
        bytes[8..16].copy_from_slice(&hash);
        std::fs::write(&path, &bytes).unwrap();
        let err = BmxDataset::open(&path).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_rejects_newline_in_names_and_bad_labels() {
        let path = tmp("badmeta");
        assert!(BmxWriter::create(&path, &["g\n1".into()], &["A".into()], &[0]).is_err());
        assert!(BmxWriter::create(&path, &["g1".into()], &["A".into()], &[3]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, [b'X'; 64]).unwrap();
        let err = BmxDataset::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
