//! Plain-text and JSON (de)serialization for datasets.
//!
//! Two self-describing tab-separated formats are provided so generated
//! datasets and discretizations can be inspected, diffed, and reloaded:
//!
//! ```text
//! #bool-microarray v1
//! #classes<TAB>Cancer<TAB>Healthy
//! #items<TAB>g1<TAB>g2<TAB>...
//! Cancer<TAB>g1 g2 g3 g5        <- one line per sample: label, expressed items
//! ```
//!
//! ```text
//! #cont-microarray v1
//! #classes<TAB>Cancer<TAB>Healthy
//! #genes<TAB>g1<TAB>g2<TAB>...
//! Cancer<TAB>0.81<TAB>5.02<TAB>...  <- one line per sample: label, values
//! ```
//!
//! JSON round-trips go through serde and preserve everything exactly.

use crate::bitset::BitSet;
use crate::dataset::{BoolDataset, ContinuousDataset};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors produced by the text parsers.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the text format.
    Parse { line: usize, message: String },
    /// The parsed content failed dataset validation.
    Invalid(crate::dataset::DatasetError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            IoError::Invalid(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<crate::dataset::DatasetError> for IoError {
    fn from(e: crate::dataset::DatasetError) -> Self {
        IoError::Invalid(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse { line, message: message.into() }
}

/// Writes a [`BoolDataset`] in the `#bool-microarray v1` format.
pub fn write_bool_tsv<W: Write>(dataset: &BoolDataset, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "#bool-microarray v1")?;
    writeln!(w, "#classes\t{}", dataset.class_names().join("\t"))?;
    writeln!(w, "#items\t{}", dataset.item_names().join("\t"))?;
    let mut items = String::new();
    for s in 0..dataset.n_samples() {
        items.clear();
        for g in dataset.sample(s).iter() {
            if !items.is_empty() {
                items.push(' ');
            }
            let _ = write!(items, "{}", dataset.item_names()[g]);
        }
        writeln!(w, "{}\t{}", dataset.class_names()[dataset.label(s)], items)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a [`BoolDataset`] from the `#bool-microarray v1` format.
pub fn read_bool_tsv<R: Read>(reader: R) -> Result<BoolDataset, IoError> {
    let r = BufReader::new(reader);
    let mut lines = r.lines().enumerate();

    let (_, magic) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if magic?.trim() != "#bool-microarray v1" {
        return Err(parse_err(1, "missing '#bool-microarray v1' header"));
    }
    let class_names = read_header_row(&mut lines, "#classes")?;
    let item_names = read_header_row(&mut lines, "#items")?;

    let class_index: HashMap<&str, usize> =
        class_names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();
    let item_index: HashMap<&str, usize> =
        item_names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();

    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let (label, items) = line
            .split_once('\t')
            .ok_or_else(|| parse_err(lineno, "expected '<label>\\t<items>'"))?;
        let class = *class_index
            .get(label)
            .ok_or_else(|| parse_err(lineno, format!("unknown class '{label}'")))?;
        let mut set = BitSet::new(item_names.len());
        for name in items.split_whitespace() {
            let g = *item_index
                .get(name)
                .ok_or_else(|| parse_err(lineno, format!("unknown item '{name}'")))?;
            set.insert(g);
        }
        samples.push(set);
        labels.push(class);
    }
    Ok(BoolDataset::new(item_names, class_names, samples, labels)?)
}

/// Writes a [`ContinuousDataset`] in the `#cont-microarray v1` format.
pub fn write_cont_tsv<W: Write>(dataset: &ContinuousDataset, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "#cont-microarray v1")?;
    writeln!(w, "#classes\t{}", dataset.class_names().join("\t"))?;
    writeln!(w, "#genes\t{}", dataset.gene_names().join("\t"))?;
    let mut row = String::new();
    for s in 0..dataset.n_samples() {
        row.clear();
        let _ = write!(row, "{}", dataset.class_names()[dataset.label(s)]);
        for v in dataset.row(s) {
            let _ = write!(row, "\t{v}");
        }
        writeln!(w, "{row}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a [`ContinuousDataset`] from the `#cont-microarray v1` format.
pub fn read_cont_tsv<R: Read>(reader: R) -> Result<ContinuousDataset, IoError> {
    let r = BufReader::new(reader);
    let mut lines = r.lines().enumerate();

    let (_, magic) = lines.next().ok_or_else(|| parse_err(1, "empty input"))?;
    if magic?.trim() != "#cont-microarray v1" {
        return Err(parse_err(1, "missing '#cont-microarray v1' header"));
    }
    let class_names = read_header_row(&mut lines, "#classes")?;
    let gene_names = read_header_row(&mut lines, "#genes")?;
    let class_index: HashMap<&str, usize> =
        class_names.iter().enumerate().map(|(i, n)| (n.as_str(), i)).collect();

    let mut values = Vec::new();
    let mut labels = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut fields = line.split('\t');
        let label = fields.next().unwrap_or("");
        let class = *class_index
            .get(label)
            .ok_or_else(|| parse_err(lineno, format!("unknown class '{label}'")))?;
        let row: Result<Vec<f64>, IoError> = fields
            .enumerate()
            .map(|(g, f)| {
                let v = f
                    .parse::<f64>()
                    .map_err(|_| parse_err(lineno, format!("bad expression value '{f}'")))?;
                // Rust's f64 parser accepts NaN/inf/-inf, but a
                // non-finite expression value would poison the MDL cut
                // search downstream (it asserts on finiteness far from
                // the input). Reject here, naming the gene.
                if !v.is_finite() {
                    let gene = gene_names.get(g).map(String::as_str).unwrap_or("?");
                    return Err(parse_err(
                        lineno,
                        format!("non-finite expression value '{f}' for gene '{gene}'"),
                    ));
                }
                Ok(v)
            })
            .collect();
        values.push(row?);
        labels.push(class);
    }
    Ok(ContinuousDataset::new(gene_names, class_names, values, labels)?)
}

fn read_header_row<I>(lines: &mut I, tag: &str) -> Result<Vec<String>, IoError>
where
    I: Iterator<Item = (usize, std::io::Result<String>)>,
{
    let (idx, line) = lines.next().ok_or_else(|| parse_err(0, format!("missing {tag} row")))?;
    let line = line?;
    let lineno = idx + 1;
    let mut fields = line.split('\t');
    if fields.next() != Some(tag) {
        return Err(parse_err(lineno, format!("expected {tag} row")));
    }
    let names: Vec<String> = fields.map(str::to_owned).collect();
    if names.is_empty() {
        return Err(parse_err(lineno, format!("{tag} row has no entries")));
    }
    // Downstream lookups index by name, so a duplicate would silently
    // alias every later reference to the last column of that name and
    // the dataset would round-trip to a *different* dataset. Reject at
    // the header line instead.
    let mut seen = HashMap::new();
    for name in &names {
        if seen.insert(name.as_str(), ()).is_some() {
            return Err(parse_err(lineno, format!("duplicate {tag} name '{name}'")));
        }
    }
    Ok(names)
}

/// Serializes a [`BoolDataset`] to JSON.
pub fn bool_to_json(dataset: &BoolDataset) -> String {
    serde_json::to_string(dataset).expect("BoolDataset serialization is infallible")
}

/// Deserializes a [`BoolDataset`] from JSON.
pub fn bool_from_json(json: &str) -> Result<BoolDataset, serde_json::Error> {
    serde_json::from_str(json)
}

/// Serializes a [`ContinuousDataset`] to JSON.
pub fn cont_to_json(dataset: &ContinuousDataset) -> String {
    serde_json::to_string(dataset).expect("ContinuousDataset serialization is infallible")
}

/// Deserializes a [`ContinuousDataset`] from JSON.
pub fn cont_from_json(json: &str) -> Result<ContinuousDataset, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::table1;

    #[test]
    fn bool_tsv_round_trip() {
        let d = table1();
        let mut buf = Vec::new();
        write_bool_tsv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("#bool-microarray v1\n"));
        assert!(text.contains("Cancer\tg1 g2 g3 g5"));
        let back = read_bool_tsv(&buf[..]).unwrap();
        assert_eq!(back.n_samples(), d.n_samples());
        assert_eq!(back.item_names(), d.item_names());
        for s in 0..d.n_samples() {
            assert_eq!(back.sample(s), d.sample(s));
            assert_eq!(back.label(s), d.label(s));
        }
    }

    #[test]
    fn bool_tsv_rejects_bad_header() {
        assert!(matches!(
            read_bool_tsv("not a header\n".as_bytes()),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn bool_tsv_rejects_unknown_item() {
        let text = "#bool-microarray v1\n#classes\tA\n#items\tg1\nA\tg9\n";
        let err = read_bool_tsv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn bool_tsv_rejects_unknown_class() {
        let text = "#bool-microarray v1\n#classes\tA\n#items\tg1\nZ\tg1\n";
        let err = read_bool_tsv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn cont_tsv_round_trip() {
        let d = ContinuousDataset::new(
            vec!["g1".into(), "g2".into()],
            vec!["A".into(), "B".into()],
            vec![vec![1.5, -2.25], vec![0.0, 1e6]],
            vec![0, 1],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_cont_tsv(&d, &mut buf).unwrap();
        let back = read_cont_tsv(&buf[..]).unwrap();
        assert_eq!(back.n_samples(), 2);
        assert_eq!(back.row(0), d.row(0));
        assert_eq!(back.row(1), d.row(1));
        assert_eq!(back.labels(), d.labels());
    }

    #[test]
    fn cont_tsv_rejects_bad_value() {
        let text = "#cont-microarray v1\n#classes\tA\n#genes\tg1\nA\tnot-a-number\n";
        let err = read_cont_tsv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn bool_tsv_rejects_duplicate_header_names() {
        // Duplicate #items: before the fix the name index silently
        // aliased both columns to the last one, so `A\tg1` round-tripped
        // into a different dataset instead of failing.
        let text = "#bool-microarray v1\n#classes\tA\n#items\tg1\tg1\nA\tg1\n";
        let err = read_bool_tsv(text.as_bytes()).unwrap_err();
        assert!(
            matches!(&err, IoError::Parse { line: 3, message } if message.contains("g1")),
            "{err}"
        );
        let text = "#bool-microarray v1\n#classes\tA\tA\n#items\tg1\nA\tg1\n";
        let err = read_bool_tsv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn cont_tsv_rejects_duplicate_header_names() {
        let text = "#cont-microarray v1\n#classes\tA\n#genes\tg1\tg2\tg1\nA\t1\t2\t3\n";
        let err = read_cont_tsv(text.as_bytes()).unwrap_err();
        assert!(
            matches!(&err, IoError::Parse { line: 3, message } if message.contains("g1")),
            "{err}"
        );
        let text = "#cont-microarray v1\n#classes\tB\tB\n#genes\tg1\nB\t1\n";
        let err = read_cont_tsv(text.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn cont_tsv_rejects_non_finite_values() {
        for bad in ["NaN", "nan", "inf", "-inf", "Infinity"] {
            let text = format!("#cont-microarray v1\n#classes\tA\n#genes\tg1\tg2\nA\t1.0\t{bad}\n");
            let err = read_cont_tsv(text.as_bytes()).unwrap_err();
            assert!(
                matches!(&err, IoError::Parse { line: 4, message }
                    if message.contains("non-finite") && message.contains("g2")),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn json_round_trip() {
        let d = table1();
        let json = bool_to_json(&d);
        let back = bool_from_json(&json).unwrap();
        assert_eq!(back.sample(2), d.sample(2));
        assert_eq!(back.labels(), d.labels());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let d = table1();
        let mut buf = Vec::new();
        write_bool_tsv(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        text.push('\n');
        let back = read_bool_tsv(text.as_bytes()).unwrap();
        assert_eq!(back.n_samples(), 5);
    }
}
