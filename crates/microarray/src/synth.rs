//! Synthetic microarray generation.
//!
//! The paper's four real datasets (ALL/AML, Lung, Prostate, Ovarian; see
//! Table 2) were downloaded from a long-dead mirror and are not
//! redistributable here. Per DESIGN.md §2 we substitute a planted-marker
//! generator:
//!
//! * every gene has a per-gene Gaussian baseline `N(μ_g, σ_g)` with `μ_g`
//!   and `σ_g` drawn once per gene;
//! * each class owns a disjoint block of *marker* genes whose mean is
//!   shifted by `marker_shift · σ_g` for samples of that class;
//! * with probability `marker_dropout` a class sample draws a marker from
//!   the background distribution instead — this is what keeps accuracy
//!   below 100% and gives the cross-validation boxplots non-zero spread.
//!
//! What drives both classifier accuracy and rule-mining cost is the shape
//! of the *discretized* data — (#samples, #items, #discriminative items,
//! class balance) — all of which this model reproduces; the presets in
//! [`presets`] match each paper dataset's published dimensions.

use crate::bitset::BitSet;
use crate::dataset::{BoolDataset, ClassId, ContinuousDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the continuous synthetic generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Human-readable dataset name (e.g. `"ALL/AML (synthetic)"`).
    pub name: String,
    /// Total number of genes, `|G|` before discretization.
    pub n_genes: usize,
    /// Samples per class; index = [`ClassId`]. For the two-class paper
    /// datasets index 0 is the paper's "class 0" and index 1 its "class 1".
    pub class_sizes: Vec<usize>,
    /// Class display names, parallel to `class_sizes`.
    pub class_names: Vec<String>,
    /// Marker genes planted per class (disjoint across classes).
    pub markers_per_class: usize,
    /// Mean shift of a marker in units of its gene's σ.
    pub marker_shift: f64,
    /// Probability that a class sample fails to express one of its markers
    /// (draws the background distribution instead). With
    /// `marker_modules > 1` the draw happens once per (sample, module) —
    /// co-regulated genes drop out together, like real expression modules.
    pub marker_dropout: f64,
    /// Number of co-regulation modules the markers of each class are
    /// partitioned into (0 or 1 = every gene independent). Real microarray
    /// genes are co-regulated: module-correlated dropout keeps the number
    /// of *distinct closed patterns* in the discretized data small at
    /// small training sizes — which is what lets Top-k finish there — and
    /// growing with training size, reproducing the paper's mining-cost
    /// crossover (Tables 4 and 6).
    #[serde(default)]
    pub marker_modules: usize,
    /// Fraction of samples that are *wobbly*: only these deviate from
    /// their module patterns. Concentrating per-gene noise in a few
    /// samples matches real discretized microarray data — most rows repeat
    /// a handful of expression patterns exactly — and makes the
    /// closed-pattern count (hence Top-k's cost) grow with *training size*
    /// at a rate set by this knob, reproducing the paper's runtime
    /// crossovers (Tables 4 and 6).
    #[serde(default)]
    pub wobble_rate: f64,
    /// Per-(wobbly sample, marker gene) probability of flipping the
    /// module's dropout decision.
    #[serde(default)]
    pub marker_flip: f64,
    /// Probability that a whole sample is *atypical*: biologically
    /// heterogeneous tissue whose marker shifts are globally attenuated.
    /// Atypical samples are what every classifier (BSTC, RCBT, SVM, …)
    /// actually gets wrong — per-gene dropout alone washes out when a
    /// classifier averages over hundreds of markers.
    #[serde(default)]
    pub atypical_rate: f64,
    /// Shift multiplier applied to an atypical sample's markers
    /// (`0` = indistinguishable from the other classes, `1` = typical).
    #[serde(default = "default_atypical_strength")]
    pub atypical_strength: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

fn default_atypical_strength() -> f64 {
    0.3
}

impl SynthConfig {
    /// Scales the dataset down by an integer factor (genes, samples, and
    /// markers all divided, minimums enforced). Used for quick-mode
    /// experiments and tests.
    pub fn scaled_down(&self, factor: usize) -> SynthConfig {
        assert!(factor >= 1);
        SynthConfig {
            name: format!("{} (1/{} scale)", self.name, factor),
            n_genes: (self.n_genes / factor).max(8),
            class_sizes: self.class_sizes.iter().map(|&s| (s / factor).max(3)).collect(),
            class_names: self.class_names.clone(),
            markers_per_class: (self.markers_per_class / factor).max(2),
            ..self.clone()
        }
    }

    /// Total number of samples.
    pub fn n_samples(&self) -> usize {
        self.class_sizes.iter().sum()
    }

    /// Validates internal consistency (markers fit, classes non-empty).
    pub fn validate(&self) -> Result<(), String> {
        if self.class_sizes.len() != self.class_names.len() {
            return Err("class_sizes and class_names lengths differ".into());
        }
        if self.class_sizes.contains(&0) {
            return Err("every class must have at least one sample".into());
        }
        if self.markers_per_class * self.class_sizes.len() > self.n_genes {
            return Err(format!(
                "{} marker genes needed but only {} genes available",
                self.markers_per_class * self.class_sizes.len(),
                self.n_genes
            ));
        }
        if !(0.0..=1.0).contains(&self.marker_dropout) {
            return Err("marker_dropout must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.atypical_rate) {
            return Err("atypical_rate must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.atypical_strength) {
            return Err("atypical_strength must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.marker_flip) {
            return Err("marker_flip must lie in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.wobble_rate) {
            return Err("wobble_rate must lie in [0, 1]".into());
        }
        Ok(())
    }

    /// Generates the continuous dataset for this configuration.
    ///
    /// # Panics
    /// Panics if [`SynthConfig::validate`] fails.
    pub fn generate(&self) -> ContinuousDataset {
        if let Err(e) = self.validate() {
            panic!("invalid SynthConfig: {e}");
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n_classes = self.class_sizes.len();

        // Per-gene baselines. Microarray intensities span a wide positive
        // range; exact units are irrelevant post-discretization.
        let mu: Vec<f64> = (0..self.n_genes).map(|_| rng.random_range(2.0..10.0)).collect();
        let sigma: Vec<f64> = (0..self.n_genes).map(|_| rng.random_range(0.5..1.5)).collect();

        // Marker gene blocks: gene ids [c*m, (c+1)*m) belong to class c.
        // Disjoint deterministic blocks keep the generator easy to reason
        // about; discretization does not care where markers live.
        let m = self.markers_per_class;
        let marker_class = |g: usize| -> Option<ClassId> {
            if g < m * n_classes {
                Some(g / m)
            } else {
                None
            }
        };

        let mut values = Vec::with_capacity(self.n_samples());
        let mut labels = Vec::with_capacity(self.n_samples());
        let n_modules = self.marker_modules.max(1);
        // module_of(g) for a marker gene: genes of one class are striped
        // across that class's modules.
        let module_of = |g: usize| (g % m) % n_modules;

        for (c, &size) in self.class_sizes.iter().enumerate() {
            for _ in 0..size {
                let strength = if rng.random_range(0.0..1.0) < self.atypical_rate {
                    self.atypical_strength
                } else {
                    1.0
                };
                let wobbly = rng.random_range(0.0..1.0) < self.wobble_rate;
                // One dropout decision per module for this sample.
                let module_on: Vec<bool> = (0..n_modules)
                    .map(|_| rng.random_range(0.0..1.0) >= self.marker_dropout)
                    .collect();
                let mut row = Vec::with_capacity(self.n_genes);
                for g in 0..self.n_genes {
                    let shifted = if marker_class(g) == Some(c) {
                        let base = if self.marker_modules <= 1 {
                            rng.random_range(0.0..1.0) >= self.marker_dropout
                        } else {
                            module_on[module_of(g)]
                        };
                        // Residual per-gene disagreement with the module,
                        // only in wobbly samples.
                        if wobbly && rng.random_range(0.0..1.0) < self.marker_flip {
                            !base
                        } else {
                            base
                        }
                    } else {
                        false
                    };
                    let mean = if shifted {
                        mu[g] + strength * self.marker_shift * sigma[g]
                    } else {
                        mu[g]
                    };
                    row.push(mean + sigma[g] * normal(&mut rng));
                }
                values.push(row);
                labels.push(c);
            }
        }

        let gene_names = (0..self.n_genes).map(|g| format!("gene{g:05}")).collect();
        ContinuousDataset::new(gene_names, self.class_names.clone(), values, labels)
            .expect("generator output is valid by construction")
    }
}

/// Standard normal variate via Box–Muller (we avoid an extra distribution
/// dependency; one transcendental pair per draw is irrelevant here).
fn normal(rng: &mut StdRng) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random_range(0.0..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

// ---------------------------------------------------------------------------
// Streaming (counter-based) generation — the out-of-core scale path
// ---------------------------------------------------------------------------

/// splitmix64 finalizer: a high-quality 64-bit mix, the standard
/// counter-based RNG core.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from the top 53 bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The same planted-marker model as [`SynthConfig::generate`], but
/// *random-access*: every expression value is a pure function of
/// `(seed, sample, gene)` via a counter-based RNG, so the matrix can be
/// produced in any order — in particular **column-major straight into a
/// `.bmx` file** with a single column of buffering, which is what lets
/// `synth` scale to millions of samples without ever materializing the
/// matrix ([`StreamingSynth::write_bmx`]).
///
/// Note the sequential generator draws from one RNG stream in row-major
/// order and therefore *cannot* be replayed column-wise; this generator
/// uses its own (deterministic, seeded) stream, so the two produce
/// statistically identical but not bit-identical datasets.
pub struct StreamingSynth {
    cfg: SynthConfig,
    /// Cumulative class sizes; `class_starts[c]` = first sample of class `c`.
    class_starts: Vec<usize>,
}

/// Hash domains keeping the per-purpose streams independent.
const DOM_MU: u64 = 0x01;
const DOM_SIGMA: u64 = 0x02;
const DOM_ATYPICAL: u64 = 0x03;
const DOM_WOBBLY: u64 = 0x04;
const DOM_MODULE: u64 = 0x05;
const DOM_DROP: u64 = 0x06;
const DOM_FLIP: u64 = 0x07;
const DOM_NOISE1: u64 = 0x08;
const DOM_NOISE2: u64 = 0x09;

impl StreamingSynth {
    /// Wraps a validated config for random-access generation.
    pub fn new(cfg: SynthConfig) -> Result<StreamingSynth, String> {
        cfg.validate()?;
        let mut class_starts = Vec::with_capacity(cfg.class_sizes.len() + 1);
        let mut acc = 0usize;
        for &size in &cfg.class_sizes {
            class_starts.push(acc);
            acc += size;
        }
        class_starts.push(acc);
        Ok(StreamingSynth { cfg, class_starts })
    }

    /// The wrapped config.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    /// Total number of samples.
    pub fn n_samples(&self) -> usize {
        self.cfg.n_samples()
    }

    fn h(&self, dom: u64, a: u64, b: u64) -> u64 {
        mix(mix(mix(self.cfg.seed ^ dom.wrapping_mul(0xa076_1d64_78bd_642f)).wrapping_add(a))
            .wrapping_add(b))
    }

    /// Class label of sample `s` (samples are laid out in class blocks,
    /// like the sequential generator).
    pub fn label(&self, s: usize) -> ClassId {
        assert!(s < self.n_samples(), "sample {s} out of range");
        self.class_starts.partition_point(|&start| start <= s) - 1
    }

    /// All labels in sample order.
    pub fn labels(&self) -> Vec<ClassId> {
        (0..self.n_samples()).map(|s| self.label(s)).collect()
    }

    /// Expression value of gene `g` in sample `s` — pure in
    /// `(seed, s, g)`, identical whichever order callers ask.
    pub fn value(&self, s: usize, g: usize) -> f64 {
        let cfg = &self.cfg;
        let n_classes = cfg.class_sizes.len();
        let m = cfg.markers_per_class;
        let n_modules = cfg.marker_modules.max(1);
        let (s64, g64) = (s as u64, g as u64);

        let mu = 2.0 + 8.0 * unit(self.h(DOM_MU, g64, 0));
        let sigma = 0.5 + unit(self.h(DOM_SIGMA, g64, 0));

        let c = self.label(s);
        let is_marker = g < m * n_classes && g / m == c;
        let shifted = if is_marker {
            let base = if cfg.marker_modules <= 1 {
                unit(self.h(DOM_DROP, s64, g64)) >= cfg.marker_dropout
            } else {
                let module = ((g % m) % n_modules) as u64;
                unit(self.h(DOM_MODULE, s64, module)) >= cfg.marker_dropout
            };
            let wobbly = unit(self.h(DOM_WOBBLY, s64, 0)) < cfg.wobble_rate;
            if wobbly && unit(self.h(DOM_FLIP, s64, g64)) < cfg.marker_flip {
                !base
            } else {
                base
            }
        } else {
            false
        };
        let mean = if shifted {
            let strength = if unit(self.h(DOM_ATYPICAL, s64, 0)) < cfg.atypical_rate {
                cfg.atypical_strength
            } else {
                1.0
            };
            mu + strength * cfg.marker_shift * sigma
        } else {
            mu
        };

        let u1 = 1.0 - unit(self.h(DOM_NOISE1, s64, g64));
        let u2 = unit(self.h(DOM_NOISE2, s64, g64));
        mean + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Streams the dataset into `path` as `.bmx`, column-major, holding
    /// only one gene column (`8 × n_samples` bytes) plus the label
    /// vector in memory — the file can exceed RAM by any factor.
    pub fn write_bmx(&self, path: &std::path::Path) -> Result<(), crate::io::IoError> {
        let gene_names: Vec<String> =
            (0..self.cfg.n_genes).map(|g| format!("gene{g:05}")).collect();
        let mut w = crate::bmx::BmxWriter::create(
            path,
            &gene_names,
            &self.cfg.class_names,
            &self.labels(),
        )?;
        let mut column = vec![0.0f64; self.n_samples()];
        for g in 0..self.cfg.n_genes {
            for (s, slot) in column.iter_mut().enumerate() {
                *slot = self.value(s, g);
            }
            w.write_column(&column)?;
        }
        w.finish()
    }

    /// Materializes the full matrix in memory (tests and small runs).
    pub fn generate(&self) -> ContinuousDataset {
        let gene_names = (0..self.cfg.n_genes).map(|g| format!("gene{g:05}")).collect();
        let values = (0..self.n_samples())
            .map(|s| (0..self.cfg.n_genes).map(|g| self.value(s, g)).collect())
            .collect();
        ContinuousDataset::new(gene_names, self.cfg.class_names.clone(), values, self.labels())
            .expect("streaming generator output is valid by construction")
    }
}

/// Configuration for the direct boolean generator (no discretization step).
///
/// Used by mining benchmarks that want to control the discretized shape
/// exactly: each class owns `markers_per_class` items expressed with
/// probability `marker_on` by its own samples and `background_on` by
/// others; all remaining items are background for everyone.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoolSynthConfig {
    /// Dataset name.
    pub name: String,
    /// Number of boolean items.
    pub n_items: usize,
    /// Samples per class.
    pub class_sizes: Vec<usize>,
    /// Class display names.
    pub class_names: Vec<String>,
    /// Marker items planted per class.
    pub markers_per_class: usize,
    /// P(item expressed) for a marker in its own class.
    pub marker_on: f64,
    /// P(item expressed) for any non-marker context.
    pub background_on: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BoolSynthConfig {
    /// Generates the boolean dataset.
    ///
    /// # Panics
    /// Panics on inconsistent configuration (markers exceeding items,
    /// probabilities outside `[0, 1]`, empty classes).
    pub fn generate(&self) -> BoolDataset {
        let n_classes = self.class_sizes.len();
        assert_eq!(n_classes, self.class_names.len());
        assert!(self.markers_per_class * n_classes <= self.n_items, "markers exceed item universe");
        assert!((0.0..=1.0).contains(&self.marker_on) && (0.0..=1.0).contains(&self.background_on));
        let mut rng = StdRng::seed_from_u64(self.seed);
        let m = self.markers_per_class;

        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (c, &size) in self.class_sizes.iter().enumerate() {
            assert!(size > 0, "class {c} is empty");
            for _ in 0..size {
                let mut s = BitSet::new(self.n_items);
                for g in 0..self.n_items {
                    let p = if g < m * n_classes && g / m == c {
                        self.marker_on
                    } else {
                        self.background_on
                    };
                    if rng.random_range(0.0..1.0) < p {
                        s.insert(g);
                    }
                }
                samples.push(s);
                labels.push(c);
            }
        }
        let item_names = (0..self.n_items).map(|g| format!("item{g:05}")).collect();
        BoolDataset::new(item_names, self.class_names.clone(), samples, labels)
            .expect("boolean generator output is valid by construction")
    }
}

/// Presets matching the published shapes of the paper's datasets (Table 2)
/// plus multi-class extensions.
pub mod presets {
    use super::*;

    /// ALL/AML leukemia: 7129 genes, 25 AML (class 0) + 47 ALL (class 1).
    pub fn all_aml(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "ALL/AML (synthetic)".into(),
            n_genes: 7129,
            class_sizes: vec![25, 47],
            class_names: vec!["AML".into(), "ALL".into()],
            markers_per_class: 450,
            marker_shift: 1.8,
            marker_dropout: 0.10,
            marker_modules: 6,
            wobble_rate: 0.08,
            marker_flip: 0.01,
            atypical_rate: 0.25,
            atypical_strength: 0.30,
            seed,
        }
    }

    /// Lung cancer: 12533 genes, 150 ADCA (class 0) + 31 MPM (class 1).
    pub fn lung(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "Lung Cancer (synthetic)".into(),
            n_genes: 12533,
            class_sizes: vec![150, 31],
            class_names: vec!["ADCA".into(), "MPM".into()],
            markers_per_class: 1100,
            marker_shift: 2.0,
            marker_dropout: 0.08,
            marker_modules: 8,
            wobble_rate: 0.08,
            marker_flip: 0.01,
            atypical_rate: 0.05,
            atypical_strength: 0.30,
            seed,
        }
    }

    /// Prostate cancer: 12600 genes, 59 normal (class 0) + 77 tumor (class 1).
    pub fn prostate(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "Prostate Cancer (synthetic)".into(),
            n_genes: 12600,
            class_sizes: vec![59, 77],
            class_names: vec!["normal".into(), "tumor".into()],
            markers_per_class: 800,
            // PC is the hardest dataset in the paper (accuracies in the
            // 75-85% range): the difficulty comes from atypical samples,
            // not marker strength (weak markers would also starve the
            // discretizer of the paper's ~1500 selected genes).
            marker_shift: 1.5,
            marker_dropout: 0.15,
            marker_modules: 5,
            wobble_rate: 0.20,
            marker_flip: 0.02,
            atypical_rate: 0.30,
            atypical_strength: 0.25,
            seed,
        }
    }

    /// Ovarian cancer: 15154 genes, 91 normal (class 0) + 162 tumor (class 1).
    pub fn ovarian(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "Ovarian Cancer (synthetic)".into(),
            n_genes: 15154,
            class_sizes: vec![91, 162],
            class_names: vec!["normal".into(), "tumor".into()],
            markers_per_class: 2900,
            marker_shift: 1.7,
            marker_dropout: 0.10,
            marker_modules: 5,
            wobble_rate: 0.25,
            marker_flip: 0.01,
            atypical_rate: 0.18,
            atypical_strength: 0.30,
            seed,
        }
    }

    /// All four paper presets in Table 2 order (ALL, LC, PC, OC).
    pub fn paper_datasets(seed: u64) -> Vec<SynthConfig> {
        vec![all_aml(seed), lung(seed ^ 1), prostate(seed ^ 2), ovarian(seed ^ 3)]
    }

    /// A 3-class dataset exercising the paper's multi-class claim (§5.3).
    pub fn three_class(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "Three-subtype tumor (synthetic)".into(),
            n_genes: 4000,
            class_sizes: vec![40, 30, 25],
            class_names: vec!["subtypeA".into(), "subtypeB".into(), "subtypeC".into()],
            markers_per_class: 250,
            marker_shift: 1.6,
            marker_dropout: 0.20,
            marker_modules: 6,
            wobble_rate: 0.20,
            marker_flip: 0.02,
            atypical_rate: 0.15,
            atypical_strength: 0.30,
            seed,
        }
    }

    /// Sample-scalability stress: the paper's datasets cap out at 253
    /// samples, but BST construction is quadratic in samples per
    /// column, so this preset inverts the aspect ratio — modest gene
    /// count, 2,600 samples (1,200 + 1,400). Exercises the interned
    /// exclusion-list arena where it matters: duplicate-heavy columns
    /// with millions of (c, h) pairs.
    pub fn sample_scale(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "Sample-scale cohort (synthetic)".into(),
            // Memory here is pairs × list length: 1,200 × 1,400 pairs
            // per class are fixed by the sample count, so the gene
            // count is kept small enough that each exclusion list
            // stays short and the arena fits a CI-sized RSS budget.
            n_genes: 48,
            class_sizes: vec![1200, 1400],
            class_names: vec!["control".into(), "case".into()],
            markers_per_class: 16,
            marker_shift: 2.0,
            marker_dropout: 0.08,
            marker_modules: 6,
            wobble_rate: 0.08,
            marker_flip: 0.01,
            atypical_rate: 0.05,
            atypical_strength: 0.30,
            seed,
        }
    }

    /// A 5-class stress variant of [`three_class`].
    pub fn five_class(seed: u64) -> SynthConfig {
        SynthConfig {
            name: "Five-subtype tumor (synthetic)".into(),
            n_genes: 6000,
            class_sizes: vec![30, 25, 25, 20, 20],
            class_names: (0..5).map(|i| format!("subtype{i}")).collect(),
            markers_per_class: 200,
            marker_shift: 1.6,
            marker_dropout: 0.20,
            marker_modules: 6,
            wobble_rate: 0.20,
            marker_flip: 0.02,
            atypical_rate: 0.15,
            atypical_strength: 0.30,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SynthConfig {
        SynthConfig {
            name: "tiny".into(),
            n_genes: 40,
            class_sizes: vec![8, 12],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: 5,
            marker_shift: 2.0,
            marker_dropout: 0.1,
            marker_modules: 0,
            wobble_rate: 0.0,
            marker_flip: 0.0,
            atypical_rate: 0.0,
            atypical_strength: 0.3,
            seed: 7,
        }
    }

    #[test]
    fn generator_shape_matches_config() {
        let cfg = tiny();
        let d = cfg.generate();
        assert_eq!(d.n_genes(), 40);
        assert_eq!(d.n_samples(), 20);
        assert_eq!(d.class_sizes(), vec![8, 12]);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = tiny().generate();
        let b = tiny().generate();
        for s in 0..a.n_samples() {
            assert_eq!(a.row(s), b.row(s));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny().generate();
        let mut cfg = tiny();
        cfg.seed = 8;
        let b = cfg.generate();
        assert_ne!(a.row(0), b.row(0));
    }

    #[test]
    fn markers_separate_classes() {
        // With zero dropout and a large shift, the class-0 marker block mean
        // must be clearly higher for class-0 samples.
        let cfg = SynthConfig { marker_dropout: 0.0, marker_shift: 4.0, ..tiny() };
        let d = cfg.generate();
        let block = 0..cfg.markers_per_class; // class 0's markers
        let mean_for = |class: usize| -> f64 {
            let members: Vec<_> = (0..d.n_samples()).filter(|&s| d.label(s) == class).collect();
            let mut acc = 0.0;
            for &s in &members {
                for g in block.clone() {
                    acc += d.value(s, g);
                }
            }
            acc / (members.len() * cfg.markers_per_class) as f64
        };
        assert!(mean_for(0) > mean_for(1) + 1.0, "{} vs {}", mean_for(0), mean_for(1));
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = tiny();
        cfg.markers_per_class = 30; // 60 markers > 40 genes
        assert!(cfg.validate().is_err());
        let mut cfg = tiny();
        cfg.marker_dropout = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = tiny();
        cfg.class_sizes = vec![8, 0];
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scaled_down_shrinks() {
        let cfg = presets::ovarian(1).scaled_down(10);
        assert_eq!(cfg.n_genes, 1515);
        assert_eq!(cfg.class_sizes, vec![9, 16]);
        cfg.validate().unwrap();
    }

    #[test]
    fn presets_match_table2_shapes() {
        let ps = presets::paper_datasets(42);
        let shapes: Vec<(usize, Vec<usize>)> =
            ps.iter().map(|p| (p.n_genes, p.class_sizes.clone())).collect();
        assert_eq!(
            shapes,
            vec![
                (7129, vec![25, 47]),
                (12533, vec![150, 31]),
                (12600, vec![59, 77]),
                (15154, vec![91, 162]),
            ]
        );
        for p in &ps {
            p.validate().unwrap();
        }
    }

    #[test]
    fn bool_generator_plants_markers() {
        let cfg = BoolSynthConfig {
            name: "bool".into(),
            n_items: 50,
            class_sizes: vec![20, 20],
            class_names: vec!["a".into(), "b".into()],
            markers_per_class: 10,
            marker_on: 0.95,
            background_on: 0.05,
            seed: 3,
        };
        let d = cfg.generate();
        assert_eq!(d.n_samples(), 40);
        assert_eq!(d.n_items(), 50);
        // Item 0 is a class-0 marker: expressed by most class-0 samples,
        // few class-1 samples.
        let on = |class: usize| {
            (0..d.n_samples()).filter(|&s| d.label(s) == class && d.expresses(s, 0)).count()
        };
        assert!(on(0) >= 15, "marker on-rate too low: {}", on(0));
        assert!(on(1) <= 5, "background on-rate too high: {}", on(1));
    }

    #[test]
    fn streaming_synth_is_order_independent_and_deterministic() {
        let s = StreamingSynth::new(tiny()).unwrap();
        // Row-major and column-major traversal must see identical values.
        let by_rows: Vec<Vec<f64>> =
            (0..s.n_samples()).map(|i| (0..40).map(|g| s.value(i, g)).collect()).collect();
        for g in (0..40).rev() {
            for i in (0..s.n_samples()).rev() {
                assert_eq!(s.value(i, g).to_bits(), by_rows[i][g].to_bits());
            }
        }
        let again = StreamingSynth::new(tiny()).unwrap();
        assert_eq!(again.value(3, 7).to_bits(), s.value(3, 7).to_bits());
        let mut other = tiny();
        other.seed = 8;
        let other = StreamingSynth::new(other).unwrap();
        assert_ne!(other.value(3, 7).to_bits(), s.value(3, 7).to_bits());
    }

    #[test]
    fn streaming_synth_labels_match_class_blocks() {
        let s = StreamingSynth::new(tiny()).unwrap();
        let labels = s.labels();
        assert_eq!(labels.len(), 20);
        assert!(labels[..8].iter().all(|&c| c == 0));
        assert!(labels[8..].iter().all(|&c| c == 1));
    }

    #[test]
    fn streaming_synth_markers_separate_classes() {
        let cfg = SynthConfig { marker_dropout: 0.0, marker_shift: 4.0, ..tiny() };
        let m = cfg.markers_per_class;
        let s = StreamingSynth::new(cfg).unwrap();
        let mean_for = |class: usize| -> f64 {
            let members: Vec<usize> = (0..s.n_samples()).filter(|&i| s.label(i) == class).collect();
            let mut acc = 0.0;
            for &i in &members {
                for g in 0..m {
                    acc += s.value(i, g);
                }
            }
            acc / (members.len() * m) as f64
        };
        assert!(mean_for(0) > mean_for(1) + 1.0, "{} vs {}", mean_for(0), mean_for(1));
    }

    #[test]
    fn streaming_synth_bmx_round_trip_matches_generate() {
        let path =
            std::env::temp_dir().join(format!("bstc_synth_{}_stream.bmx", std::process::id()));
        let s = StreamingSynth::new(tiny()).unwrap();
        s.write_bmx(&path).unwrap();
        let bmx = crate::bmx::BmxDataset::open(&path).unwrap();
        let mem = s.generate();
        assert_eq!(bmx.labels(), mem.labels());
        assert_eq!(bmx.gene_names(), mem.gene_names());
        for g in 0..mem.n_genes() {
            for i in 0..mem.n_samples() {
                assert_eq!(bmx.column(g)[i].to_bits(), mem.value(i, g).to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multiclass_presets_validate() {
        presets::three_class(1).validate().unwrap();
        presets::five_class(1).validate().unwrap();
        let d = presets::three_class(1).scaled_down(8).generate();
        assert_eq!(d.n_classes(), 3);
    }
}
