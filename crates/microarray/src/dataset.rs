//! Relational microarray dataset types.
//!
//! The paper (§2) works with a finite gene/item universe `G` and `N`
//! disjoint collections of samples `C₁ … C_N`; each sample is a subset of
//! `G`. [`BoolDataset`] is exactly that: one [`BitSet`] per sample over the
//! item universe, plus a class label per sample.
//!
//! Real microarray measurements are continuous; [`ContinuousDataset`] holds
//! the raw expression matrix that the `discretize` crate turns into a
//! [`BoolDataset`].

use crate::bitset::BitSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a class (`C_i` in the paper). Classes are dense `0..n_classes`.
pub type ClassId = usize;

/// Index of an item (a discretized gene, `g_j` in the paper).
pub type ItemId = usize;

/// Index of a sample (`s_{i,j}` in the paper).
pub type SampleId = usize;

/// Errors produced while constructing or validating datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum DatasetError {
    /// A sample referenced a class id `>= n_classes`.
    ClassOutOfRange { sample: SampleId, class: ClassId, n_classes: usize },
    /// Number of labels differs from number of samples.
    LabelCountMismatch { samples: usize, labels: usize },
    /// A sample bitset was built over the wrong item universe size.
    ItemUniverseMismatch { sample: SampleId, got: usize, expected: usize },
    /// A class has no samples; every class must be non-empty for training.
    EmptyClass { class: ClassId },
    /// A continuous matrix row had the wrong number of values.
    RowLengthMismatch { sample: SampleId, got: usize, expected: usize },
    /// A dataset with zero samples or zero items/genes was supplied.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::ClassOutOfRange { sample, class, n_classes } => write!(
                f,
                "sample {sample} has class {class}, but only {n_classes} classes are declared"
            ),
            DatasetError::LabelCountMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            DatasetError::ItemUniverseMismatch { sample, got, expected } => {
                write!(f, "sample {sample} is a set over {got} items, expected {expected}")
            }
            DatasetError::EmptyClass { class } => write!(f, "class {class} has no samples"),
            DatasetError::RowLengthMismatch { sample, got, expected } => {
                write!(f, "sample {sample} has {got} expression values, expected {expected}")
            }
            DatasetError::Empty => write!(f, "dataset has no samples or no items"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labeled boolean (discretized) microarray dataset.
///
/// This is the common relational representation of Table 1 in the paper:
/// each sample is the set of items it *expresses*, plus a class label.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoolDataset {
    item_names: Vec<String>,
    class_names: Vec<String>,
    samples: Vec<BitSet>,
    labels: Vec<ClassId>,
}

impl BoolDataset {
    /// Builds and validates a dataset.
    ///
    /// `item_names.len()` fixes the item universe; every sample bitset must
    /// be built over exactly that capacity. Classes may be empty (e.g. in a
    /// test split); see [`BoolDataset::first_empty_class`].
    pub fn new(
        item_names: Vec<String>,
        class_names: Vec<String>,
        samples: Vec<BitSet>,
        labels: Vec<ClassId>,
    ) -> Result<Self, DatasetError> {
        if samples.is_empty() || item_names.is_empty() {
            return Err(DatasetError::Empty);
        }
        if samples.len() != labels.len() {
            return Err(DatasetError::LabelCountMismatch {
                samples: samples.len(),
                labels: labels.len(),
            });
        }
        let n_items = item_names.len();
        for (i, s) in samples.iter().enumerate() {
            if s.capacity() != n_items {
                return Err(DatasetError::ItemUniverseMismatch {
                    sample: i,
                    got: s.capacity(),
                    expected: n_items,
                });
            }
        }
        let n_classes = class_names.len();
        for (i, &c) in labels.iter().enumerate() {
            if c >= n_classes {
                return Err(DatasetError::ClassOutOfRange { sample: i, class: c, n_classes });
            }
        }
        Ok(BoolDataset { item_names, class_names, samples, labels })
    }

    /// The smallest declared class with zero samples, if any. Test splits
    /// may legitimately miss a class; *training* requires every class
    /// populated — trainers check this (cf. [`DatasetError::EmptyClass`]).
    pub fn first_empty_class(&self) -> Option<ClassId> {
        self.class_sizes().iter().position(|&s| s == 0)
    }

    /// Number of items (discretized genes) in the universe, `|G|`.
    pub fn n_items(&self) -> usize {
        self.item_names.len()
    }

    /// Number of samples, `|S|`.
    pub fn n_samples(&self) -> usize {
        self.samples.len()
    }

    /// Number of class labels, `N`.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Item display names (e.g. `g3` or `TP53@[2.1,inf)`).
    pub fn item_names(&self) -> &[String] {
        &self.item_names
    }

    /// Class display names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// The item set expressed by sample `s`.
    pub fn sample(&self, s: SampleId) -> &BitSet {
        &self.samples[s]
    }

    /// All sample item sets, indexed by [`SampleId`].
    pub fn samples(&self) -> &[BitSet] {
        &self.samples
    }

    /// Class label of sample `s`.
    pub fn label(&self, s: SampleId) -> ClassId {
        self.labels[s]
    }

    /// All labels, indexed by [`SampleId`].
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// Sample ids belonging to class `c` (ascending).
    pub fn class_members(&self, c: ClassId) -> Vec<SampleId> {
        (0..self.n_samples()).filter(|&s| self.labels[s] == c).collect()
    }

    /// `|C_c|` for each class.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// True if sample `s` expresses item `g` — the paper's `s[g]`.
    #[inline]
    pub fn expresses(&self, s: SampleId, g: ItemId) -> bool {
        self.samples[s].contains(g)
    }

    /// Restricts the dataset to the given samples (in the given order),
    /// keeping the item universe intact.
    ///
    /// Used by the evaluation harness to materialize train/test splits.
    /// Classes that lose all their samples are kept in the name table so
    /// labels stay stable; training code must check class sizes.
    pub fn subset(&self, sample_ids: &[SampleId]) -> BoolDataset {
        BoolDataset {
            item_names: self.item_names.clone(),
            class_names: self.class_names.clone(),
            samples: sample_ids.iter().map(|&s| self.samples[s].clone()).collect(),
            labels: sample_ids.iter().map(|&s| self.labels[s]).collect(),
        }
    }

    /// Sample ids whose item sets are exactly equal to an earlier sample's
    /// set. Theorem 2 in the paper assumes none exist; the BST handles them
    /// but callers may want to warn.
    pub fn duplicate_samples(&self) -> Vec<SampleId> {
        let mut dups = Vec::new();
        for i in 0..self.samples.len() {
            if self.samples[..i].contains(&self.samples[i]) {
                dups.push(i);
            }
        }
        dups
    }
}

/// A labeled continuous expression matrix (genes × samples), pre-discretization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContinuousDataset {
    gene_names: Vec<String>,
    class_names: Vec<String>,
    /// Row-major: `values[sample][gene]`.
    values: Vec<Vec<f64>>,
    labels: Vec<ClassId>,
}

impl ContinuousDataset {
    /// Builds and validates a continuous dataset.
    pub fn new(
        gene_names: Vec<String>,
        class_names: Vec<String>,
        values: Vec<Vec<f64>>,
        labels: Vec<ClassId>,
    ) -> Result<Self, DatasetError> {
        if values.is_empty() || gene_names.is_empty() {
            return Err(DatasetError::Empty);
        }
        if values.len() != labels.len() {
            return Err(DatasetError::LabelCountMismatch {
                samples: values.len(),
                labels: labels.len(),
            });
        }
        let n_genes = gene_names.len();
        for (i, row) in values.iter().enumerate() {
            if row.len() != n_genes {
                return Err(DatasetError::RowLengthMismatch {
                    sample: i,
                    got: row.len(),
                    expected: n_genes,
                });
            }
        }
        let n_classes = class_names.len();
        for (i, &c) in labels.iter().enumerate() {
            if c >= n_classes {
                return Err(DatasetError::ClassOutOfRange { sample: i, class: c, n_classes });
            }
        }
        Ok(ContinuousDataset { gene_names, class_names, values, labels })
    }

    /// The smallest declared class with zero samples, if any
    /// (cf. [`BoolDataset::first_empty_class`]).
    pub fn first_empty_class(&self) -> Option<ClassId> {
        self.class_sizes().iter().position(|&s| s == 0)
    }

    /// Number of genes (columns).
    pub fn n_genes(&self) -> usize {
        self.gene_names.len()
    }

    /// Number of samples (rows).
    pub fn n_samples(&self) -> usize {
        self.values.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Gene display names.
    pub fn gene_names(&self) -> &[String] {
        &self.gene_names
    }

    /// Class display names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Expression value of gene `g` in sample `s`.
    #[inline]
    pub fn value(&self, s: SampleId, g: usize) -> f64 {
        self.values[s][g]
    }

    /// The full expression row of sample `s`.
    pub fn row(&self, s: SampleId) -> &[f64] {
        &self.values[s]
    }

    /// Class label of sample `s`.
    pub fn label(&self, s: SampleId) -> ClassId {
        self.labels[s]
    }

    /// All labels, indexed by sample.
    pub fn labels(&self) -> &[ClassId] {
        &self.labels
    }

    /// `|C_c|` for each class.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Restricts to the given samples (cf. [`BoolDataset::subset`]).
    pub fn subset(&self, sample_ids: &[SampleId]) -> ContinuousDataset {
        ContinuousDataset {
            gene_names: self.gene_names.clone(),
            class_names: self.class_names.clone(),
            values: sample_ids.iter().map(|&s| self.values[s].clone()).collect(),
            labels: sample_ids.iter().map(|&s| self.labels[s]).collect(),
        }
    }

    /// Restricts to the given gene columns (used to run SVM/random-forest on
    /// exactly the genes the entropy discretization selected, as in §6.1).
    pub fn select_genes(&self, gene_ids: &[usize]) -> ContinuousDataset {
        ContinuousDataset {
            gene_names: gene_ids.iter().map(|&g| self.gene_names[g].clone()).collect(),
            class_names: self.class_names.clone(),
            values: self
                .values
                .iter()
                .map(|row| gene_ids.iter().map(|&g| row[g]).collect())
                .collect(),
            labels: self.labels.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bool() -> BoolDataset {
        let items = vec!["g1".into(), "g2".into(), "g3".into()];
        let classes = vec!["A".into(), "B".into()];
        let samples = vec![
            BitSet::from_iter(3, [0, 1]),
            BitSet::from_iter(3, [2]),
            BitSet::from_iter(3, [0, 2]),
        ];
        BoolDataset::new(items, classes, samples, vec![0, 1, 1]).unwrap()
    }

    #[test]
    fn bool_dataset_accessors() {
        let d = tiny_bool();
        assert_eq!(d.n_items(), 3);
        assert_eq!(d.n_samples(), 3);
        assert_eq!(d.n_classes(), 2);
        assert_eq!(d.class_sizes(), vec![1, 2]);
        assert_eq!(d.class_members(1), vec![1, 2]);
        assert!(d.expresses(0, 1));
        assert!(!d.expresses(1, 0));
    }

    #[test]
    fn bool_dataset_rejects_bad_labels() {
        let items = vec!["g1".into()];
        let classes = vec!["A".into()];
        let samples = vec![BitSet::from_iter(1, [0])];
        let err = BoolDataset::new(items, classes, samples, vec![3]).unwrap_err();
        assert!(matches!(err, DatasetError::ClassOutOfRange { class: 3, .. }));
    }

    #[test]
    fn empty_classes_allowed_but_reported() {
        let items = vec!["g1".into()];
        let classes = vec!["A".into(), "B".into()];
        let samples = vec![BitSet::from_iter(1, [0])];
        let d = BoolDataset::new(items, classes, samples, vec![0]).unwrap();
        assert_eq!(d.first_empty_class(), Some(1));
        let full = tiny_bool();
        assert_eq!(full.first_empty_class(), None);
    }

    #[test]
    fn bool_dataset_rejects_universe_mismatch() {
        let items = vec!["g1".into(), "g2".into()];
        let classes = vec!["A".into()];
        let samples = vec![BitSet::new(5)];
        let err = BoolDataset::new(items, classes, samples, vec![0]).unwrap_err();
        assert!(matches!(err, DatasetError::ItemUniverseMismatch { got: 5, expected: 2, .. }));
    }

    #[test]
    fn bool_dataset_rejects_label_count_mismatch() {
        let items = vec!["g1".into()];
        let classes = vec!["A".into()];
        let samples = vec![BitSet::new(1), BitSet::new(1)];
        let err = BoolDataset::new(items, classes, samples, vec![0]).unwrap_err();
        assert!(matches!(err, DatasetError::LabelCountMismatch { samples: 2, labels: 1 }));
    }

    #[test]
    fn subset_preserves_universe() {
        let d = tiny_bool();
        let sub = d.subset(&[2, 0]);
        assert_eq!(sub.n_samples(), 2);
        assert_eq!(sub.n_items(), 3);
        assert_eq!(sub.label(0), 1);
        assert_eq!(sub.label(1), 0);
        assert_eq!(sub.sample(0), d.sample(2));
    }

    #[test]
    fn duplicate_samples_detected() {
        let items = vec!["g1".into(), "g2".into()];
        let classes = vec!["A".into(), "B".into()];
        let samples =
            vec![BitSet::from_iter(2, [0]), BitSet::from_iter(2, [0]), BitSet::from_iter(2, [1])];
        let d = BoolDataset::new(items, classes, samples, vec![0, 1, 1]).unwrap();
        assert_eq!(d.duplicate_samples(), vec![1]);
    }

    #[test]
    fn continuous_dataset_validation_and_selection() {
        let d = ContinuousDataset::new(
            vec!["g1".into(), "g2".into(), "g3".into()],
            vec!["A".into(), "B".into()],
            vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            vec![0, 1],
        )
        .unwrap();
        assert_eq!(d.value(1, 2), 6.0);
        let sel = d.select_genes(&[2, 0]);
        assert_eq!(sel.gene_names(), &["g3".to_string(), "g1".to_string()]);
        assert_eq!(sel.row(0), &[3.0, 1.0]);
        assert_eq!(sel.row(1), &[6.0, 4.0]);

        let err = ContinuousDataset::new(
            vec!["g1".into()],
            vec!["A".into()],
            vec![vec![1.0, 2.0]],
            vec![0],
        )
        .unwrap_err();
        assert!(matches!(err, DatasetError::RowLengthMismatch { .. }));
    }

    #[test]
    fn empty_dataset_rejected() {
        let err = BoolDataset::new(vec![], vec![], vec![], vec![]).unwrap_err();
        assert_eq!(err, DatasetError::Empty);
    }
}
