//! A fixed-capacity bitset over `u64` words.
//!
//! Every sample in a discretized microarray dataset is a set of boolean
//! items (gene/interval pairs), and the hot loops of both BST construction
//! and CAR mining are set intersections, differences, and subset tests over
//! these sets. A dense word-packed representation keeps those operations at
//! a few instructions per 64 items, which is what makes the paper's
//! O(|S|²·|G|) bounds practical at ovarian-cancer scale (253 samples ×
//! ~15k items).

use serde::{Deserialize, Serialize};
use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` elements drawn from `0..capacity`.
///
/// The capacity is fixed at construction; all binary operations require both
/// operands to have the same capacity and panic otherwise (mixing item
/// universes is always a logic error in this codebase).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    /// Number of valid bits.
    capacity: usize,
    /// Packed words; bits at positions `>= capacity` are always zero.
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with room for elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { capacity, words: vec![0; capacity.div_ceil(WORD_BITS)] }
    }

    /// Creates a set containing every element in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.clear_excess();
        s
    }

    /// Builds a set from an iterator of elements.
    ///
    /// # Panics
    /// Panics if any element is `>= capacity`.
    pub fn from_iter<I: IntoIterator<Item = usize>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::new(capacity);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// The fixed capacity (the size of the underlying universe).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i` into the set.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.capacity, "bit {i} out of range 0..{}", self.capacity);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes `i` from the set.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.capacity, "bit {i} out of range 0..{}", self.capacity);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Tests membership of `i`. Out-of-range indices are simply absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        crate::simd::count_words(&self.words)
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self −= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        self.check(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns `self − other` as a new set.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// `|self ∩ other|` without allocating. Dispatches to the SIMD
    /// popcount kernel ([`crate::simd`]) when the host supports one.
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.check(other);
        crate::simd::intersection_len_words(&self.words, &other.words)
    }

    /// `|self − other|` without allocating — the AND-NOT+popcount kernel:
    /// for a negative exclusion list mask `self`, this counts the literals
    /// a query `other` satisfies (items of the list the query does *not*
    /// express) at a few instructions per 64 items. Dispatches to the SIMD
    /// popcount kernel ([`crate::simd`]) when the host supports one.
    #[inline]
    pub fn andnot_len(&self, other: &BitSet) -> usize {
        self.check(other);
        crate::simd::andnot_len_words(&self.words, &other.words)
    }

    /// Overwrites `self` with `a ∩ b` without allocating (all three sets
    /// must share one capacity). This is the scratch-buffer form of
    /// [`BitSet::intersection`] used by the compiled inference kernels.
    pub fn assign_intersection(&mut self, a: &BitSet, b: &BitSet) {
        self.check(a);
        self.check(b);
        for (w, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *w = x & y;
        }
    }

    /// Fused [`BitSet::assign_intersection`] + [`BitSet::len`]:
    /// overwrites `self` with `a ∩ b` and returns `|self|` in a single
    /// memory pass over the words (SIMD-dispatched). The compiled
    /// inference kernels use this wherever an intersection is immediately
    /// followed by a count or emptiness test.
    pub fn assign_intersection_len(&mut self, a: &BitSet, b: &BitSet) -> usize {
        self.check(a);
        self.check(b);
        crate::simd::and_assign_count_words(&mut self.words, &a.words, &b.words)
    }

    /// One fused carve-and-scatter step of a coverage sweep over `self`
    /// (the remaining set): moves the `expr` bits out of `self`, writes
    /// `value` into `cells` at every moved bit's index, and returns how
    /// many bits moved — one SIMD-dispatched memory pass where the
    /// assign / count / difference trio plus a scan of the moved set
    /// would take four, without ever materializing the moved set.
    /// `cells` must cover this set's capacity.
    pub fn carve_scatter(&mut self, expr: &BitSet, cells: &mut [f64], value: f64) -> usize {
        self.check(expr);
        crate::simd::carve_scatter_words(&mut self.words, &expr.words, cells, value)
    }

    /// Overwrites `self` with `a − b` without allocating (all three sets
    /// must share one capacity). The scratch-buffer form of
    /// [`BitSet::difference`] used by BST construction's per-pair
    /// exclusion-list loop.
    pub fn assign_difference(&mut self, a: &BitSet, b: &BitSet) {
        self.check(a);
        self.check(b);
        for (w, (x, y)) in self.words.iter_mut().zip(a.words.iter().zip(&b.words)) {
            *w = x & !y;
        }
    }

    /// The packed `u64` words backing the set (bit `i` of word `w` is
    /// element `w * 64 + i`; bits at positions `>= capacity` are zero).
    /// Exposed read-only so word-parallel kernels and benchmarks can
    /// operate on the raw representation.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// True if `self` and `other` share no elements.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }

    /// `Σ cells[g]` over this set's members in ascending order, plus the
    /// member count — the **exact float operations in the exact order**
    /// of `self.iter().map(|g| cells[g]).sum()`, so callers holding a
    /// bit-identity contract can substitute it freely.
    ///
    /// The point is microarchitecture, not math: the naive bit-walk
    /// interleaves a hard-to-predict "next set bit" branch with the
    /// serial float-add dependency chain, so every mispredict adds to an
    /// already latency-bound loop. Splitting each word into an
    /// integer-only offset-extraction pass (speculation-friendly, no
    /// float inputs) followed by a fixed-trip-count add loop lets the
    /// out-of-order core run extraction ahead while the add chain
    /// drains, which measures markedly faster on the dense shared-item
    /// sets of compiled inference.
    pub fn gather_sum(&self, cells: &[f64]) -> (f64, usize) {
        let mut sum = 0.0;
        let mut n = 0usize;
        let mut offs = [0u8; 64];
        for (wi, &w) in self.words.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let cnt = w.count_ones() as usize;
            let mut m = w;
            for o in offs.iter_mut().take(cnt) {
                *o = m.trailing_zeros() as u8;
                m &= m.wrapping_sub(1);
            }
            let base = wi * 64;
            for &o in offs.iter().take(cnt) {
                sum += cells[base + o as usize];
            }
            n += cnt;
        }
        (sum, n)
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects the elements into a `Vec` (ascending).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    #[inline]
    fn check(&self, other: &BitSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset capacity mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }

    fn clear_excess(&mut self) {
        let excess = self.words.len() * WORD_BITS - self.capacity;
        if excess > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> excess;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending-order element iterator over a [`BitSet`].
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_elements() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert_eq!(s.len(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 64, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        assert!(!s.contains(67));
        // capacity that is an exact multiple of the word size
        let s = BitSet::full(128);
        assert_eq!(s.len(), 128);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(200, [1, 5, 100, 150]);
        let b = BitSet::from_iter(200, [5, 100, 199]);
        assert_eq!(a.intersection(&b).to_vec(), vec![5, 100]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 5, 100, 150, 199]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 150]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_subset(&b));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
    }

    #[test]
    fn andnot_len_matches_difference() {
        let a = BitSet::from_iter(200, [1, 5, 100, 150]);
        let b = BitSet::from_iter(200, [5, 100, 199]);
        assert_eq!(a.andnot_len(&b), a.difference(&b).len());
        assert_eq!(b.andnot_len(&a), 1);
        assert_eq!(a.andnot_len(&a), 0);
        let empty = BitSet::new(200);
        assert_eq!(a.andnot_len(&empty), a.len());
        assert_eq!(empty.andnot_len(&a), 0);
    }

    #[test]
    fn assign_intersection_reuses_buffer() {
        let a = BitSet::from_iter(200, [1, 5, 100, 150]);
        let b = BitSet::from_iter(200, [5, 100, 199]);
        let mut out = BitSet::from_iter(200, [0, 42, 160]); // stale content
        out.assign_intersection(&a, &b);
        assert_eq!(out, a.intersection(&b));
        // Degenerate operands are fine too.
        out.assign_intersection(&a, &BitSet::new(200));
        assert!(out.is_empty());
    }

    #[test]
    fn assign_difference_reuses_buffer() {
        let a = BitSet::from_iter(200, [1, 5, 100, 150]);
        let b = BitSet::from_iter(200, [5, 100, 199]);
        let mut out = BitSet::from_iter(200, [0, 42, 160]); // stale content
        out.assign_difference(&a, &b);
        assert_eq!(out, a.difference(&b));
        out.assign_difference(&b, &a);
        assert_eq!(out, b.difference(&a));
        out.assign_difference(&a, &a);
        assert!(out.is_empty());
    }

    #[test]
    fn assign_intersection_len_is_fused_assign_plus_count() {
        let a = BitSet::from_iter(200, [1, 5, 100, 150]);
        let b = BitSet::from_iter(200, [5, 100, 199]);
        let mut out = BitSet::from_iter(200, [0, 42, 160]); // stale content
        assert_eq!(out.assign_intersection_len(&a, &b), 2);
        assert_eq!(out, a.intersection(&b));
        assert_eq!(out.assign_intersection_len(&a, &BitSet::new(200)), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn carve_scatter_moves_expr_bits() {
        let orig = BitSet::from_iter(200, [1, 5, 100, 150, 199]);
        let expr = BitSet::from_iter(200, [5, 100, 42]);
        let mut remaining = orig.clone();
        let mut cells = vec![0.0f64; 200];
        assert_eq!(remaining.carve_scatter(&expr, &mut cells, 0.5), 2);
        assert_eq!(remaining, orig.difference(&expr));
        for (g, &v) in cells.iter().enumerate() {
            let want = if g == 5 || g == 100 { 0.5 } else { 0.0 };
            assert_eq!(v, want, "cell {g}");
        }
        // A second carve with the same expr moves nothing.
        assert_eq!(remaining.carve_scatter(&expr, &mut cells, 9.0), 0);
        assert_eq!(remaining, orig.difference(&expr));
    }

    #[test]
    fn gather_sum_is_bitwise_equal_to_iterated_sum() {
        // Deterministic awkward set: mixed dense/sparse words, partial tail.
        let mut x = 0x9e3779b97f4a7c15u64;
        let set = BitSet::from_iter(
            777,
            (0..777).filter(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 3 != 3
            }),
        );
        let cells: Vec<f64> = (0..777).map(|g| (g as f64).sin() * 1e3 + 0.1).collect();
        let mut want = 0.0;
        let mut want_n = 0usize;
        for g in set.iter() {
            want += cells[g];
            want_n += 1;
        }
        let (sum, n) = set.gather_sum(&cells);
        // Bitwise equality — gather_sum must run the identical add chain.
        assert_eq!(sum.to_bits(), want.to_bits());
        assert_eq!(n, want_n);
        assert_eq!(BitSet::new(777).gather_sum(&cells), (0.0, 0));
    }

    #[test]
    fn words_expose_packed_representation() {
        let s = BitSet::from_iter(130, [0, 64, 129]);
        let w = s.words();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 1);
        assert_eq!(w[2], 2);
        assert_eq!(w.iter().map(|x| x.count_ones() as usize).sum::<usize>(), s.len());
    }

    #[test]
    fn subset_edge_cases() {
        let empty = BitSet::new(50);
        let full = BitSet::full(50);
        assert!(empty.is_subset(&full));
        assert!(empty.is_subset(&empty));
        assert!(full.is_subset(&full));
        assert!(!full.is_subset(&empty));
        assert!(empty.is_disjoint(&empty));
        assert!(empty.is_disjoint(&full));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mixed_capacity_panics() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        let _ = a.is_subset(&b);
    }

    #[test]
    fn iterator_crosses_word_boundaries() {
        let elems = [0usize, 1, 62, 63, 64, 65, 127, 128, 191];
        let s = BitSet::from_iter(192, elems.iter().copied());
        assert_eq!(s.to_vec(), elems);
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = BitSet::full(0);
        assert!(f.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_iter(70, [3, 69]);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let s = BitSet::from_iter(100, [2, 3, 5, 7, 97]);
        let json = serde_json::to_string(&s).unwrap();
        let back: BitSet = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
