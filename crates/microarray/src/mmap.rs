//! Raw-syscall memory-mapping shim for out-of-core datasets.
//!
//! The microarray crate is std-only — no `libc` crate — so, like
//! `serve::sys`, the three syscalls the columnar reader needs (`mmap`,
//! `munmap`, `madvise`) are declared as `extern "C"` bindings against
//! the platform libc that std already links. The shim exposes a
//! read-only, file-backed [`Mmap`] plus an eviction hint
//! ([`Mmap::advise_dontneed`]) that the chunked training loop uses to
//! keep resident memory bounded: after a gene-column chunk has been
//! consumed, its pages are handed back to the kernel, so the process
//! RSS tracks the chunk budget instead of the file size.

use std::fs::File;
use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
}

const PROT_READ: c_int = 1;
// Same value on Linux and the BSDs (macOS included).
const MAP_PRIVATE: c_int = 0x2;
/// Drop the pages; a later touch refaults them from the backing file.
const MADV_DONTNEED: c_int = 4;

/// Page size used to align eviction hints. 4 KiB is the smallest page
/// size on every supported target; aligning *inward* to it only ever
/// under-evicts, never touches bytes outside the requested range.
const PAGE: usize = 4096;

/// A read-only, file-backed, private memory mapping.
///
/// The mapping lives for the struct's lifetime; pages fault in lazily
/// on first touch and can be released early with
/// [`Mmap::advise_dontneed`]. A zero-length file maps to an empty
/// slice without calling `mmap` (which rejects length 0).
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is read-only and owned; sharing &Mmap across
// threads only ever reads the mapped bytes.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::null_mut(), len: 0 });
        }
        // SAFETY: fd is valid for the duration of the call; a private
        // read-only mapping of a regular file has no aliasing hazards
        // (writes through other handles may or may not be visible, but
        // the .bmx reader checksums the file before trusting it).
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes.
    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe a live PROT_READ mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Hints the kernel that `offset..offset + len` will not be needed
    /// again soon, releasing its resident pages (a later touch refaults
    /// from the file). The range is aligned *inward* to page boundaries
    /// so partially covered pages — which may still hold live neighbors
    /// — are kept. Advisory only: failure is ignored, correctness never
    /// depends on the pages actually going away.
    pub fn advise_dontneed(&self, offset: usize, len: usize) {
        let start = offset.checked_add(PAGE - 1).map(|v| v & !(PAGE - 1)).unwrap_or(self.len);
        let end = offset.saturating_add(len).min(self.len) & !(PAGE - 1);
        if start >= end {
            return;
        }
        // SAFETY: [start, end) is page-aligned and within the owned
        // mapping; MADV_DONTNEED on a private file mapping just drops
        // clean pages.
        unsafe {
            madvise((self.ptr as *mut u8).add(start) as *mut c_void, end - start, MADV_DONTNEED);
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: unmapping the exact region this struct mapped.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("bstc_mmap_{}_{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents_and_survives_advice() {
        let path = tmp("basic");
        let payload: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map_readonly(&file).unwrap();
        assert_eq!(map.as_slice(), &payload[..]);
        // Evicted pages must refault to identical contents.
        map.advise_dontneed(0, map.len());
        assert_eq!(map.as_slice(), &payload[..]);
        // Misaligned, partial, and out-of-range hints are all safe no-ops
        // or inward-aligned evictions.
        map.advise_dontneed(3, 10);
        map.advise_dontneed(map.len() - 1, 100);
        map.advise_dontneed(usize::MAX - 10, 100);
        assert_eq!(map.as_slice(), &payload[..]);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map_readonly(&file).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }
}
