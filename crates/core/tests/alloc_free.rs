//! Proves the tentpole's zero-allocation claim: once a [`Scratch`] has
//! warmed up, `CompiledModel::classify` / `class_values_into` perform no
//! heap allocation per query. A counting global allocator wraps the
//! system one; this file holds exactly one test so no concurrent test can
//! pollute the counter.

use bstc::{Arithmetization, BatchScratch, BstcModel, ParBatchScratch, Scratch, WorkerPool};
use microarray::synth::BoolSynthConfig;
use microarray::BitSet;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_classify_does_not_allocate() {
    let data = BoolSynthConfig {
        name: "alloc-free".into(),
        n_items: 257, // crosses word boundaries
        class_sizes: vec![7, 9, 5],
        class_names: vec!["a".into(), "b".into(), "c".into()],
        markers_per_class: 30,
        marker_on: 0.85,
        background_on: 0.15,
        seed: 42,
    }
    .generate();
    let queries: Vec<BitSet> = data.samples().to_vec();

    for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
        let model = BstcModel::train_with(&data, arith);
        let compiled = model.compile();
        let mut scratch = Scratch::for_model(&compiled);

        // Warm-up: the first queries may still grow buffers (they should
        // not, given for_model, but the claim is about the steady state).
        for q in &queries {
            let _ = compiled.classify(q, &mut scratch);
            let _ = compiled.confidence_gap(q, &mut scratch);
        }

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut predictions = 0usize;
        for _ in 0..5 {
            for q in &queries {
                predictions += compiled.classify(q, &mut scratch);
                compiled.class_values_into(q, &mut scratch);
                predictions += (compiled.confidence_gap(q, &mut scratch) >= 0.0) as usize;
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{arith:?}: steady-state classification allocated {} times over {} queries",
            after - before,
            5 * queries.len()
        );
        assert!(predictions > 0); // keep the loop observable

        // The batch-sweep kernel makes the same claim: once BatchScratch
        // has seen the model shape and batch size, whole-batch
        // classification is allocation-free.
        let mut batch_scratch = BatchScratch::for_model(&compiled);
        let mut batch_out = Vec::with_capacity(queries.len());
        compiled.classify_batch_into(&queries, &mut batch_scratch, &mut batch_out);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..5 {
            compiled.classify_batch_into(&queries, &mut batch_scratch, &mut batch_out);
            predictions += batch_out.iter().sum::<usize>();
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{arith:?}: steady-state batch classification allocated {} times",
            after - before,
        );
        assert!(predictions > 0);

        // The blocked + multi-core path: once ParBatchScratch has grown
        // its per-lane scratches and the shared values arena, pooled
        // whole-batch classification is allocation-free too — the pool
        // broadcasts a borrowed closure, nothing is boxed per run. Lanes
        // are pinned (the model is far below the work cutoff) so the
        // fan-out path itself is what's measured, with a non-default
        // block size so the blocked sweep runs multi-block.
        let pool = WorkerPool::new(3);
        let mut par_scratch = ParBatchScratch::new();
        par_scratch.set_block_bytes(256);
        let mut par_out = Vec::with_capacity(queries.len());
        compiled.classify_batch_par_into(&queries, &pool, &mut par_scratch, &mut par_out);
        compiled.class_values_batch_par_into_lanes(&queries, &pool, &mut par_scratch, 3);
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..5 {
            compiled.class_values_batch_par_into_lanes(&queries, &pool, &mut par_scratch, 3);
            predictions += (par_scratch.values_of(0)[0] >= 0.0) as usize;
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(
            after - before,
            0,
            "{arith:?}: steady-state pooled batch classification allocated {} times",
            after - before,
        );
        assert!(predictions > 0);
        assert_eq!(par_out.len(), queries.len());
    }
}
