//! Property tests for the BSTC core on random boolean datasets:
//! the paper's structural invariants must hold for *any* training data.

use bstc::{bar_for_car, mine_topk, mine_topk_per_sample, row_bar, Bst, BstcModel};
use microarray::{BitSet, BoolDataset};
use proptest::prelude::*;

/// Random boolean dataset: 2–3 classes, 3–10 items, every class non-empty.
fn dataset() -> impl Strategy<Value = BoolDataset> {
    (2usize..4, 3usize..10, 2usize..10).prop_flat_map(|(n_classes, n_items, extra)| {
        let n_samples = n_classes + extra;
        (
            prop::collection::vec(prop::collection::vec(0..n_items, 0..n_items), n_samples),
            prop::collection::vec(0..n_classes, n_samples - n_classes),
        )
            .prop_map(move |(sample_items, tail)| {
                let item_names = (0..n_items).map(|i| format!("g{i}")).collect();
                let class_names = (0..n_classes).map(|c| format!("c{c}")).collect();
                let sets: Vec<BitSet> = sample_items
                    .iter()
                    .map(|items| BitSet::from_iter(n_items, items.iter().copied()))
                    .collect();
                let mut labels: Vec<usize> = (0..n_classes).collect();
                labels.extend(tail);
                BoolDataset::new(item_names, class_names, sets, labels).unwrap()
            })
    })
}

/// Datasets with no cross-class duplicate samples (Theorem 2's hypothesis).
fn dataset_no_dups() -> impl Strategy<Value = BoolDataset> {
    dataset().prop_filter("no cross-class duplicates", |d| {
        for i in 0..d.n_samples() {
            for j in i + 1..d.n_samples() {
                if d.label(i) != d.label(j) && d.sample(i) == d.sample(j) {
                    return false;
                }
            }
        }
        true
    })
}

/// Deterministic corner cases for the arena-interned builder: every
/// out-sample empty (all expressed rows are black dots, every pair takes
/// the positive fallback) and identical cross-class samples (degenerate
/// empty lists). Both must intern exactly as the legacy builder stores.
#[test]
fn interned_build_matches_legacy_on_black_dot_and_degenerate_data() {
    let black_dot = BoolDataset::new(
        (0..4).map(|i| format!("g{i}")).collect(),
        vec!["a".into(), "b".into()],
        vec![
            BitSet::from_iter(4, [0, 2]),
            BitSet::from_iter(4, [1, 2, 3]),
            BitSet::new(4),
            BitSet::new(4),
        ],
        vec![0, 0, 1, 1],
    )
    .unwrap();
    let degenerate = BoolDataset::new(
        (0..3).map(|i| format!("g{i}")).collect(),
        vec!["a".into(), "b".into()],
        vec![
            BitSet::from_iter(3, [0, 1]),
            BitSet::from_iter(3, [0, 1]), // identical, other class
            BitSet::from_iter(3, [2]),
        ],
        vec![0, 1, 1],
    )
    .unwrap();
    for d in [black_dot, degenerate] {
        for class in 0..d.n_classes() {
            let new = Bst::build(&d, class);
            let old = Bst::build_legacy(&d, class);
            assert_eq!(new, old, "class {class}");
            assert_eq!(new.stats(), old.stats(), "class {class}");
        }
    }
}

proptest! {
    /// §3.2: every atomic cell rule is 100% confident on the training data
    /// (no out-of-class training sample satisfies it), and — absent
    /// cross-class duplicates — is satisfied by its own supporting sample.
    #[test]
    fn cell_rules_are_100_percent_confident(d in dataset()) {
        for class in 0..d.n_classes() {
            let bst = Bst::build(&d, class);
            let degenerate = bst.degenerate_pairs();
            for g in 0..d.n_items() {
                for c in 0..bst.n_class_samples() {
                    let Some(rule) = bst.cell_rule(g, c) else { continue };
                    // No out-of-class sample may satisfy the rule.
                    for s in 0..d.n_samples() {
                        if d.label(s) != class {
                            prop_assert!(
                                !rule.antecedent.eval(d.sample(s)),
                                "class {class} cell ({g},{c}) matched out-sample {s}"
                            );
                        }
                    }
                    // Its own sample satisfies it unless some (c,h) pair is
                    // degenerate (identical cross-class samples).
                    let own = bst.class_sample_id(c);
                    if degenerate.iter().all(|&(cs, _)| cs != own) {
                        prop_assert!(rule.antecedent.eval(d.sample(own)));
                    }
                }
            }
        }
    }

    /// Algorithm 2: the g-row BAR's support is exactly the class samples
    /// expressing g, and the rule is 100% confident.
    #[test]
    fn row_bars_supports_and_confidence(d in dataset_no_dups()) {
        for class in 0..d.n_classes() {
            let bst = Bst::build(&d, class);
            for g in 0..d.n_items() {
                let Some(bar) = row_bar(&bst, g) else { continue };
                let expected: Vec<usize> = (0..d.n_samples())
                    .filter(|&s| d.label(s) == class && d.sample(s).contains(g))
                    .collect();
                prop_assert_eq!(bar.support_set(&d), expected, "class {} item {}", class, g);
                prop_assert_eq!(bar.confidence(&d), Some(1.0));
            }
        }
    }

    /// Algorithm 3 invariants: unique closed supports, non-increasing
    /// support sizes, 100%-confident materialized BARs.
    #[test]
    fn mined_rules_invariants(d in dataset_no_dups()) {
        for class in 0..d.n_classes() {
            let bst = Bst::build(&d, class);
            let rules = mine_topk(&bst, 8);
            let mut seen = std::collections::HashSet::new();
            for w in rules.windows(2) {
                prop_assert!(w[0].support_len() >= w[1].support_len());
            }
            for r in &rules {
                prop_assert!(seen.insert(r.support.clone()), "duplicate support");
                // Closure check: car = intersection of supports' items and
                // support = all class samples containing car.
                let mut car = BitSet::full(bst.n_items());
                for c in r.support.iter() {
                    car.intersect_with(bst.class_sample_items(c));
                }
                prop_assert_eq!(&car.to_vec(), &r.car_items);
                let supp: Vec<usize> = (0..bst.n_class_samples())
                    .filter(|&c| r.car_items.iter().all(|&g| bst.class_sample_items(c).contains(g)))
                    .collect();
                prop_assert_eq!(supp, r.support.to_vec());
                if !r.car_items.is_empty() {
                    let bar = r.to_bar(&bst);
                    prop_assert_eq!(bar.confidence(&d), Some(1.0));
                }
            }
        }
    }

    /// Algorithm 4: every class sample is covered by some mined rule.
    #[test]
    fn per_sample_mining_covers(d in dataset_no_dups()) {
        for class in 0..d.n_classes() {
            let bst = Bst::build(&d, class);
            let rules = mine_topk_per_sample(&bst, 1);
            for c in 0..bst.n_class_samples() {
                prop_assert!(rules.iter().any(|r| r.support.contains(c)),
                    "class {class} column {c} uncovered");
            }
        }
    }

    /// Theorem 2 round-trip for random small CARs.
    #[test]
    fn theorem2_round_trip_random_cars(d in dataset_no_dups(),
                                       raw_items in prop::collection::vec(0usize..10, 1..4)) {
        for class in 0..d.n_classes() {
            let bst = Bst::build(&d, class);
            let mut items: Vec<usize> =
                raw_items.iter().map(|&g| g % d.n_items()).collect();
            items.sort_unstable();
            items.dedup();
            prop_assert!(bstc::theorem2_round_trip(&d, &bst, &items),
                "round trip failed: class {class} items {items:?}");
        }
    }

    /// BSTCE outputs are always in [0, 1]; classification is deterministic
    /// and ties break to the smallest class.
    #[test]
    fn class_values_bounded_and_deterministic(d in dataset(),
                                              q_items in prop::collection::vec(0usize..10, 0..10)) {
        let model = BstcModel::train(&d);
        let q = BitSet::from_iter(d.n_items(), q_items.iter().map(|&g| g % d.n_items()));
        let values = model.class_values(&q);
        for &v in &values {
            prop_assert!((0.0..=1.0).contains(&v), "value {v} out of range");
        }
        let c1 = model.classify(&q);
        let c2 = model.classify(&q);
        prop_assert_eq!(c1, c2);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(c1, values.iter().position(|&v| v == max).unwrap());
    }

    /// Training-set resubstitution: on duplicate-free data, every training
    /// sample's own-class value is strictly positive (it satisfies its own
    /// cell rules), so BSTC never assigns a class the sample shares nothing
    /// with.
    #[test]
    fn own_class_value_positive(d in dataset_no_dups()) {
        let model = BstcModel::train(&d);
        for s in 0..d.n_samples() {
            if d.sample(s).is_empty() { continue; }
            let v = model.class_values(d.sample(s));
            prop_assert!(v[d.label(s)] > 0.0,
                "sample {s} has zero affinity to its own class");
        }
    }

    /// Serialization: a model round-trips through JSON with identical
    /// classification behaviour.
    #[test]
    fn model_json_round_trip(d in dataset(),
                             q_items in prop::collection::vec(0usize..10, 0..10)) {
        let model = BstcModel::train(&d);
        let back: BstcModel =
            serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
        let q = BitSet::from_iter(d.n_items(), q_items.iter().map(|&g| g % d.n_items()));
        prop_assert_eq!(model.classify(&q), back.classify(&q));
        prop_assert_eq!(model.class_values(&q), back.class_values(&q));
    }

    /// §5.3.2: with threshold 0, `explain` surfaces exactly the non-blank
    /// cells — one entry per (expressed-by-query, expressed-by-column) item
    /// per class sample.
    #[test]
    fn explain_covers_exactly_the_nonblank_cells(d in dataset(),
                                                 q_items in prop::collection::vec(0usize..10, 0..10)) {
        let model = BstcModel::train(&d);
        let q = BitSet::from_iter(d.n_items(), q_items.iter().map(|&g| g % d.n_items()));
        for class in 0..d.n_classes() {
            let expected: usize = d
                .class_members(class)
                .iter()
                .map(|&s| q.intersection_len(d.sample(s)))
                .sum();
            let ex = model.explain(class, &q, 0.0);
            prop_assert_eq!(ex.len(), expected, "class {}", class);
            for e in &ex {
                prop_assert!((0.0..=1.0).contains(&e.satisfaction));
                prop_assert!(q.contains(e.item));
                prop_assert!(d.sample(e.supporting_sample).contains(e.item));
                prop_assert_eq!(d.label(e.supporting_sample), class);
            }
        }
    }

    /// The interned arena builder is bit-identical to the frozen legacy
    /// builder: full structural equality (arena contents and entry order,
    /// per-pair indices, out_expr, stats) on random datasets — including
    /// ones with cross-class duplicates, whose degenerate empty lists
    /// must intern identically.
    #[test]
    fn interned_build_matches_legacy(d in dataset()) {
        for class in 0..d.n_classes() {
            let new = Bst::build(&d, class);
            let old = Bst::build_legacy(&d, class);
            prop_assert_eq!(&new, &old, "class {} structure diverged", class);
            prop_assert_eq!(new.stats(), old.stats(), "class {} stats diverged", class);
        }
    }

    /// The compiled lowering and classify outputs of the interned builder
    /// match the legacy builder's bit for bit on random queries.
    #[test]
    fn interned_build_compiles_and_classifies_like_legacy(
        d in dataset(),
        q_items in prop::collection::vec(0usize..10, 0..10),
    ) {
        use bstc::{Arithmetization, CompiledBst, Scratch};
        let q = BitSet::from_iter(d.n_items(), q_items.iter().map(|&g| g % d.n_items()));
        let mut scratch = Scratch::new();
        for class in 0..d.n_classes() {
            let new = CompiledBst::compile(&Bst::build(&d, class));
            let old = CompiledBst::compile(&Bst::build_legacy(&d, class));
            for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
                let v_new = new.class_value(&q, arith, &mut scratch);
                let v_old = old.class_value(&q, arith, &mut scratch);
                prop_assert_eq!(
                    v_new.to_bits(), v_old.to_bits(),
                    "class {} {:?}: {} vs {}", class, arith, v_new, v_old
                );
            }
        }
    }

    /// The streaming BST serializer emits exactly the tree serializer's
    /// bytes for any dataset shape.
    #[test]
    fn streamed_bst_json_matches_tree_json(d in dataset()) {
        for class in 0..d.n_classes() {
            let bst = Bst::build(&d, class);
            let mut streamed = Vec::new();
            bst.write_json_to(&mut streamed).unwrap();
            prop_assert_eq!(
                String::from_utf8(streamed).unwrap(),
                serde_json::to_string(&bst).unwrap(),
                "class {} streamed JSON diverged", class
            );
        }
    }

    /// `bar_for_car` on a random supported conjunction always yields a
    /// 100%-confident rule.
    #[test]
    fn bar_for_car_always_fully_confident(d in dataset_no_dups(), pick in 0usize..1000) {
        let class = pick % d.n_classes();
        let bst = Bst::build(&d, class);
        // Use an actual training sample's items (guaranteed supported).
        let members = d.class_members(class);
        let sample = members[pick % members.len()];
        let items = d.sample(sample).to_vec();
        if items.is_empty() { return Ok(()); }
        let bar = bar_for_car(&bst, &items).expect("supported by its own sample");
        prop_assert_eq!(bar.confidence(&d), Some(1.0));
        prop_assert!(bar.support_set(&d).contains(&sample));
    }
}
