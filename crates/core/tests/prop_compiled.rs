//! Differential property tests for the compiled inference kernels: over
//! random synthetic datasets and random queries, the word-parallel
//! popcount path must be **bit-identical** to the reference scalar BSTCE
//! for every [`Arithmetization`], and the parallel trainer must produce
//! exactly the sequential trainer's output.

use bstc::{Arithmetization, BatchScratch, Bst, BstcModel, ParBatchScratch, Scratch, WorkerPool};
use microarray::{BitSet, BoolDataset};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one random dataset case.
#[derive(Clone, Debug)]
struct Case {
    n_items: usize,
    class_sizes: Vec<usize>,
    density: f64,
    seed: u64,
}

fn cases() -> impl Strategy<Value = Case> {
    (2usize..120, 2usize..4, 0u64..1_000_000, 1usize..30).prop_flat_map(
        |(n_items, n_classes, seed, density_pct)| {
            prop::collection::vec(1usize..7, n_classes).prop_map(move |class_sizes| Case {
                n_items,
                class_sizes,
                density: 0.05 + density_pct as f64 * 0.03,
                seed,
            })
        },
    )
}

/// Materializes a random boolean dataset (and an RNG for queries).
fn build_dataset(case: &Case) -> (BoolDataset, StdRng) {
    let mut rng = StdRng::seed_from_u64(case.seed);
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for (c, &size) in case.class_sizes.iter().enumerate() {
        for _ in 0..size {
            samples.push(random_set(case.n_items, case.density, &mut rng));
            labels.push(c);
        }
    }
    let items = (0..case.n_items).map(|g| format!("g{g}")).collect();
    let classes = (0..case.class_sizes.len()).map(|c| format!("c{c}")).collect();
    let data = BoolDataset::new(items, classes, samples, labels).expect("valid by construction");
    (data, rng)
}

fn random_set(n_items: usize, density: f64, rng: &mut StdRng) -> BitSet {
    BitSet::from_iter(n_items, (0..n_items).filter(|_| rng.random_range(0.0..1.0) < density))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled `class_values`, `classify`, `confidence_gap` and `explain`
    /// are bit-identical to the reference scalar path for all three
    /// arithmetizations, on random queries of every density.
    #[test]
    fn compiled_kernels_are_bit_identical_to_reference(case in cases()) {
        let (data, mut rng) = build_dataset(&case);
        for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
            let model = BstcModel::train_with(&data, arith);
            let compiled = model.compile();
            let mut scratch = Scratch::new();
            let mut queries: Vec<BitSet> = data.samples().to_vec();
            queries.push(BitSet::new(case.n_items));
            queries.push(BitSet::full(case.n_items));
            for _ in 0..4 {
                let density = rng.random_range(0.0..1.0);
                queries.push(random_set(case.n_items, density, &mut rng));
            }
            for q in &queries {
                let reference = model.class_values(q);
                let fast = compiled.class_values(q, &mut scratch);
                // Exact equality — the kernels must produce the same bits,
                // not merely close values.
                prop_assert_eq!(&reference, &fast, "{:?} {:?}", arith, q);
                prop_assert_eq!(model.classify(q), compiled.classify(q, &mut scratch));
                prop_assert_eq!(
                    model.confidence_gap(q),
                    compiled.confidence_gap(q, &mut scratch)
                );
                for class in 0..data.n_classes() {
                    prop_assert_eq!(
                        model.explain(class, q, 0.5),
                        compiled.explain(class, q, 0.5, &mut scratch)
                    );
                }
            }
            // Batch classification agrees with the per-query path.
            prop_assert_eq!(
                compiled.classify_all(&queries),
                queries.iter().map(|q| model.classify(q)).collect::<Vec<_>>()
            );
        }
    }

    /// The inverted batch-sweep kernel (outer columns, inner queries) is
    /// bit-identical to the per-query compiled kernel for all three
    /// arithmetizations, across batch sizes including the empty batch.
    #[test]
    fn batch_sweep_is_bit_identical_to_per_query(case in cases()) {
        let (data, mut rng) = build_dataset(&case);
        for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
            let model = BstcModel::train_with(&data, arith);
            let compiled = model.compile();
            let mut scratch = Scratch::new();
            let mut batch_scratch = BatchScratch::new();
            let mut predictions = Vec::new();
            let mut queries: Vec<BitSet> = data.samples().to_vec();
            queries.push(BitSet::new(case.n_items));
            queries.push(BitSet::full(case.n_items));
            for _ in 0..4 {
                let density = rng.random_range(0.0..1.0);
                queries.push(random_set(case.n_items, density, &mut rng));
            }
            // One reused scratch across varying batch sizes, so steady-state
            // buffer reuse is exercised, not just the fresh-allocation path.
            for batch in [queries.len(), 1, 3, 0, queries.len()] {
                let part = &queries[..batch];
                compiled.classify_batch_into(part, &mut batch_scratch, &mut predictions);
                prop_assert_eq!(predictions.len(), part.len());
                for (qi, q) in part.iter().enumerate() {
                    let reference = compiled.class_values(q, &mut scratch);
                    // Exact equality — loop inversion must not perturb a
                    // single float operation's order.
                    prop_assert_eq!(
                        &reference[..],
                        batch_scratch.values_of(qi),
                        "{:?} batch={} q={}", arith, batch, qi
                    );
                    prop_assert_eq!(compiled.classify(q, &mut scratch), predictions[qi]);
                }
            }
        }
    }

    /// The blocked sweep is bit-identical to the per-query kernel for
    /// every column-block budget — including one-column blocks (the
    /// pre-blocking loop order) and a single all-columns block — the
    /// pooled multi-lane sweep is bit-identical for every lane count,
    /// and the frozen legacy baseline sweep matches as well, all under
    /// both the SIMD dispatch and the forced-portable fallback.
    #[test]
    fn blocked_and_pooled_sweeps_bit_identical_for_all_shapes(case in cases()) {
        let (data, mut rng) = build_dataset(&case);
        let pool = WorkerPool::new(3);
        for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
            let model = BstcModel::train_with(&data, arith);
            let compiled = model.compile();
            let mut scratch = Scratch::new();
            let mut batch_scratch = BatchScratch::new();
            let mut par_scratch = ParBatchScratch::new();
            let mut queries: Vec<BitSet> = data.samples().to_vec();
            queries.push(BitSet::new(case.n_items));
            queries.push(BitSet::full(case.n_items));
            for _ in 0..3 {
                let density = rng.random_range(0.0..1.0);
                queries.push(random_set(case.n_items, density, &mut rng));
            }
            let reference: Vec<Vec<f64>> =
                queries.iter().map(|q| compiled.class_values(q, &mut scratch)).collect();
            for portable in [false, true] {
                microarray::simd::force_portable(portable);
                // 1 byte forces one-column blocks; 1 GiB forces a single
                // block spanning every column; the middle sizes exercise
                // partial blocking (scratch reused across block sizes).
                for block_bytes in [1usize, 64, 4096, 1 << 30] {
                    batch_scratch.set_block_bytes(block_bytes);
                    compiled.class_values_batch_into(&queries, &mut batch_scratch);
                    for (qi, want) in reference.iter().enumerate() {
                        prop_assert_eq!(
                            &want[..],
                            batch_scratch.values_of(qi),
                            "{:?} portable={} block={} q={}", arith, portable, block_bytes, qi
                        );
                    }
                    // The frozen pre-SIMD baseline sweep (classify_bench's
                    // kernel_speedup baseline) must stay bit-identical
                    // too, or the benchmark would compare kernels that
                    // don't compute the same thing.
                    compiled.class_values_batch_into_legacy(&queries, &mut batch_scratch);
                    for (qi, want) in reference.iter().enumerate() {
                        prop_assert_eq!(
                            &want[..],
                            batch_scratch.values_of(qi),
                            "legacy {:?} portable={} block={} q={}", arith, portable, block_bytes, qi
                        );
                    }
                }
                // Pooled path at pinned lane counts (the tiny models here
                // never cross the work-based cutoff on their own),
                // including more lanes than queries.
                for lanes in [1usize, 2, 3, 64] {
                    compiled.class_values_batch_par_into_lanes(
                        &queries, &pool, &mut par_scratch, lanes,
                    );
                    for (qi, want) in reference.iter().enumerate() {
                        prop_assert_eq!(
                            &want[..],
                            par_scratch.values_of(qi),
                            "{:?} portable={} lanes={} q={}", arith, portable, lanes, qi
                        );
                    }
                }
            }
            microarray::simd::force_portable(false);
        }
    }

    /// The parallel per-class / per-column trainer produces exactly the
    /// sequential trainer's output.
    #[test]
    fn parallel_build_all_equals_sequential(case in cases()) {
        let (data, _) = build_dataset(&case);
        let parallel = Bst::build_all(&data);
        let sequential = Bst::build_all_seq(&data);
        prop_assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            prop_assert_eq!(p, s);
        }
    }
}
