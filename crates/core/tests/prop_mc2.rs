//! Property tests for the §4.2 (MC)²BAR classifier.

use bstc::Mc2Classifier;
use microarray::{BitSet, BoolDataset};
use proptest::prelude::*;

fn dataset() -> impl Strategy<Value = BoolDataset> {
    (2usize..4, 4usize..10, 2usize..10).prop_flat_map(|(n_classes, n_items, extra)| {
        let n_samples = n_classes + extra;
        (
            prop::collection::vec(prop::collection::vec(0..n_items, 1..n_items), n_samples),
            prop::collection::vec(0..n_classes, n_samples - n_classes),
        )
            .prop_map(move |(sample_items, tail)| {
                let item_names = (0..n_items).map(|i| format!("g{i}")).collect();
                let class_names = (0..n_classes).map(|c| format!("c{c}")).collect();
                let sets: Vec<BitSet> = sample_items
                    .iter()
                    .map(|items| BitSet::from_iter(n_items, items.iter().copied()))
                    .collect();
                let mut labels: Vec<usize> = (0..n_classes).collect();
                labels.extend(tail);
                BoolDataset::new(item_names, class_names, sets, labels).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scores always lie in [0, 1]; classification is deterministic and
    /// valid.
    #[test]
    fn scores_bounded_and_classification_valid(d in dataset(),
                                               q in prop::collection::vec(0usize..10, 0..10)) {
        let m = Mc2Classifier::train(&d, 2);
        let query = BitSet::from_iter(d.n_items(), q.iter().map(|&g| g % d.n_items()));
        for v in m.class_scores(&query) {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let c = m.classify(&query);
        prop_assert_eq!(c, m.classify(&query));
        prop_assert!(c < d.n_classes());
    }

    /// Every duplicate-free training sample fully satisfies some mined
    /// rule of its own class (Algorithm 4 coverage), so its own-class
    /// score is exactly 1.
    #[test]
    fn own_class_score_is_one_without_duplicates(d in dataset()) {
        // Skip datasets with cross-class duplicate samples (their rules
        // may be degenerate).
        for i in 0..d.n_samples() {
            for j in i + 1..d.n_samples() {
                if d.label(i) != d.label(j) && d.sample(i) == d.sample(j) {
                    return Ok(());
                }
            }
        }
        let m = Mc2Classifier::train(&d, 1);
        for s in 0..d.n_samples() {
            if d.sample(s).is_empty() { continue; }
            let scores = m.class_scores(d.sample(s));
            prop_assert!((scores[d.label(s)] - 1.0).abs() < 1e-12,
                "sample {s}: {scores:?}");
        }
    }

    /// Model serialization round-trips behaviour.
    #[test]
    fn serialization_round_trip(d in dataset(),
                                q in prop::collection::vec(0usize..10, 0..10)) {
        let m = Mc2Classifier::train(&d, 2);
        let back: Mc2Classifier =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        let query = BitSet::from_iter(d.n_items(), q.iter().map(|&g| g % d.n_items()));
        prop_assert_eq!(m.classify(&query), back.classify(&query));
        prop_assert_eq!(m.class_scores(&query), back.class_scores(&query));
    }
}
