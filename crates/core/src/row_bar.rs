//! Gene-row BARs (Algorithm 2, Figure 2).
//!
//! The g-row BAR of a BST is the 100 %-confident disjunction of the g-row's
//! cell rules: `g AND (OR over supporting samples c of AND(clauses of the
//! (g,c) cell)) ⇒ C_i`. Its support is exactly the set of class samples
//! expressing `g`.

use crate::bar::{Bar, BarAntecedent, ExclusionClause};
use crate::bst::{Bst, Cell};
use microarray::ItemId;

/// Builds the g-row BAR of `bst` (Algorithm 2). Returns `None` when no
/// class sample expresses `g` (an all-empty row denotes no rule).
pub fn row_bar(bst: &Bst, g: ItemId) -> Option<Bar> {
    let mut disjuncts: Vec<Vec<ExclusionClause>> = Vec::new();
    let mut any = false;
    for c in 0..bst.n_class_samples() {
        match bst.cell(g, c) {
            Cell::Empty => continue,
            Cell::BlackDot => {
                any = true;
                // An empty conjunction is TRUE: the black dot satisfies the
                // whole disjunction on its own (Algorithm 2's B stays TRUE).
                disjuncts.push(Vec::new());
            }
            Cell::Lists(lists) => {
                any = true;
                disjuncts.push(
                    lists
                        .into_iter()
                        .map(|(h, list)| list.to_clause(bst.out_sample_id(h)))
                        .collect(),
                );
            }
        }
    }
    if !any {
        return None;
    }
    Some(Bar { antecedent: BarAntecedent { car_items: vec![g], disjuncts }, class: bst.class() })
}

/// All row BARs of a BST, indexed by item; `None` entries are items no
/// class sample expresses.
pub fn all_row_bars(bst: &Bst) -> Vec<Option<Bar>> {
    (0..bst.n_items()).map(|g| row_bar(bst, g)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bar::display_bar;
    use microarray::fixtures::table1;

    #[test]
    fn figure_2_row_bars_have_100_percent_confidence() {
        let d = table1();
        let bst = Bst::build(&d, 0);
        for g in 0..6 {
            let bar = row_bar(&bst, g).expect("every gene is expressed by some Cancer sample");
            assert_eq!(bar.confidence(&d), Some(1.0), "g{} row BAR not 100% confident", g + 1);
        }
    }

    #[test]
    fn row_bar_supports_match_figure_1() {
        // Support of the g-row BAR = class samples expressing g.
        let d = table1();
        let bst = Bst::build(&d, 0);
        let expected: [&[usize]; 6] = [&[0, 1], &[0, 2], &[0, 1], &[2], &[0], &[1, 2]];
        for (g, want) in expected.iter().enumerate() {
            let bar = row_bar(&bst, g).unwrap();
            assert_eq!(&bar.support_set(&d), want, "g{}", g + 1);
        }
    }

    #[test]
    fn g1_row_bar_is_plain_car() {
        // Figure 2: "Gene g1: (g1 expressed) ⇒ Cancer." — black dots only,
        // so every disjunct is TRUE and the rule degenerates to the CAR.
        let d = table1();
        let bst = Bst::build(&d, 0);
        let bar = row_bar(&bst, 0).unwrap();
        assert!(bar.antecedent.disjuncts.iter().any(|d| d.is_empty()));
        // It accepts anything expressing g1.
        let q = microarray::BitSet::from_iter(6, [0]);
        assert!(bar.antecedent.eval(&q));
    }

    #[test]
    fn g4_row_bar_matches_figure_2() {
        // "Gene g4: (g4 expressed AND [either g5 or g3 not expressed]) ⇒ Cancer."
        let d = table1();
        let bst = Bst::build(&d, 0);
        let bar = row_bar(&bst, 3).unwrap();
        let text = display_bar(&bar, &d);
        assert_eq!(text, "g4 expressed AND [(either g3 or g5 not expressed)] => Cancer");
    }

    #[test]
    fn g3_row_bar_matches_figure_2_semantics() {
        // "Gene g3: g3 AND [EITHER {(g1) AND (-g4 or -g6)} OR {(-g2 or -g5)
        // AND (-g4 or -g5)}] ⇒ Cancer". Check semantics by evaluating
        // against the paper's description rather than string equality.
        let d = table1();
        let bst = Bst::build(&d, 0);
        let bar = row_bar(&bst, 2).unwrap();
        assert_eq!(bar.antecedent.car_items, vec![2]);
        assert_eq!(bar.antecedent.disjuncts.len(), 2);
        // Sample s1 and s2 satisfy, Healthy s4/s5 do not.
        assert!(bar.antecedent.eval(d.sample(0)));
        assert!(bar.antecedent.eval(d.sample(1)));
        assert!(!bar.antecedent.eval(d.sample(3)));
        assert!(!bar.antecedent.eval(d.sample(4)));
        // A query expressing g3 and g1 but not g4/g6 satisfies disjunct 1.
        let q = microarray::BitSet::from_iter(6, [0, 2]);
        assert!(bar.antecedent.eval(&q));
        // g3 with everything else expressed fails both disjuncts.
        let q = microarray::BitSet::from_iter(6, [1, 2, 3, 4, 5]);
        assert!(!bar.antecedent.eval(&q));
    }

    #[test]
    fn g6_row_bar_matches_figure_2() {
        // "Gene g6: (g6 AND [(-g4 or -g5) OR (-g3 or -g5)]) ⇒ Cancer."
        let d = table1();
        let bst = Bst::build(&d, 0);
        let bar = row_bar(&bst, 5).unwrap();
        let text = display_bar(&bar, &d);
        assert_eq!(
            text,
            "g6 expressed AND [EITHER {(either g4 or g5 not expressed)} OR \
             {(either g3 or g5 not expressed)}] => Cancer"
        );
    }

    #[test]
    fn all_row_bars_indexes_by_item() {
        let d = table1();
        let bst = Bst::build(&d, 1); // Healthy
        let bars = all_row_bars(&bst);
        assert_eq!(bars.len(), 6);
        // g1 is expressed by no Healthy sample: no row BAR.
        assert!(bars[0].is_none());
        assert!(bars[2].is_some()); // g3 expressed by s4 and s5
    }

    #[test]
    fn healthy_row_bars_are_100_percent_confident_too() {
        let d = table1();
        let bst = Bst::build(&d, 1);
        for bar in all_row_bars(&bst).into_iter().flatten() {
            assert_eq!(bar.confidence(&d), Some(1.0));
        }
    }
}
