//! A reusable scoped worker pool for data-parallel kernel execution.
//!
//! [`CompiledModel::classify_all`](crate::CompiledModel::classify_all)
//! used to spawn fresh OS threads with `std::thread::scope` on every
//! call — fine for one offline batch, hostile to a server executing
//! thousands of micro-batches per second, where per-call spawns cost
//! more than the kernel. This pool keeps `N − 1` helper threads parked
//! on a condvar and hands them **broadcast jobs**: a borrowed
//! `Fn(usize)` closure plus a task count. Workers (the caller
//! included — it always participates, so a pool of parallelism 1 runs
//! everything inline with zero synchronization) claim task indices from
//! a shared atomic counter until the range is exhausted.
//!
//! Design properties the kernel code relies on:
//!
//! * **Zero allocation per `run`** — the job is passed by reference
//!   (lifetime-erased for the duration of the call), nothing is boxed,
//!   so steady-state batched classification stays allocation-free
//!   (asserted by `tests/alloc_free.rs`).
//! * **Scoped borrows** — `run` does not return until every helper has
//!   finished the job, so the closure may borrow the caller's stack.
//! * **Panic safety** — a panicking task is caught in the worker, the
//!   job still completes (remaining indices are drained), and `run`
//!   re-panics on the caller's thread; helpers survive for the next
//!   job.
//!
//! One process-wide pool ([`global`]) sized to
//! `available_parallelism() − 1` helpers is shared by `classify_all`
//! and the serve batcher, so a server never oversubscribes cores no
//! matter how many subsystems want parallelism.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A borrowed broadcast job, lifetime-erased while helpers hold it.
///
/// Soundness: the pointer is only dereferenced between the generation
/// bump that publishes it and the completion handshake that `run` blocks
/// on, and `run` keeps the referent alive for that whole window.
#[derive(Clone, Copy)]
struct RawJob {
    task: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
}

// SAFETY: the closure itself is `Sync` (required by `run`'s signature),
// so sharing the pointer across worker threads is safe for the window
// described on [`RawJob`].
unsafe impl Send for RawJob {}

/// State guarded by the job mutex: the published job and its generation.
struct JobSlot {
    generation: u64,
    job: Option<RawJob>,
    shutdown: bool,
}

/// Everything the helpers share with the pool handle.
struct Shared {
    slot: Mutex<JobSlot>,
    /// Wakes helpers when a new generation (or shutdown) is published.
    start: Condvar,
    /// Next unclaimed task index of the current job.
    next: AtomicUsize,
    /// Helpers still working on the current job.
    active: Mutex<usize>,
    /// Wakes the caller when `active` reaches zero.
    done: Condvar,
    /// Set when any task of the current job panicked.
    panicked: AtomicBool,
}

/// A fixed-size pool of parked helper threads executing broadcast jobs.
/// See the module docs for the execution model.
pub struct WorkerPool {
    shared: &'static Shared,
    /// Helper threads (parallelism − 1; may be empty).
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `parallelism` total execution lanes: the
    /// caller of [`WorkerPool::run`] plus `parallelism − 1` parked
    /// helper threads.
    ///
    /// The shared state is intentionally leaked (`Box::leak`): pools are
    /// created once per process (or per test) and the helpers' lifetime
    /// then needs no `Arc` traffic on the hot path.
    pub fn new(parallelism: usize) -> WorkerPool {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(JobSlot { generation: 0, job: None, shutdown: false }),
            start: Condvar::new(),
            next: AtomicUsize::new(0),
            active: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }));
        let helpers = parallelism.max(1) - 1;
        let handles = (0..helpers)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("bstc-pool-{i}"))
                    .spawn(move || helper_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total execution lanes (caller + helpers).
    pub fn lanes(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `task(0..n_tasks)` across the pool's lanes and returns
    /// when every index has completed. The caller participates, so this
    /// is a plain inline loop when the pool has no helpers or the job
    /// has a single task. Allocation-free. Re-panics (after the job
    /// fully drains) if any task panicked.
    pub fn run(&self, n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_tasks == 0 {
            return;
        }
        if self.handles.is_empty() || n_tasks == 1 {
            for i in 0..n_tasks {
                task(i);
            }
            return;
        }

        let shared = self.shared;
        shared.panicked.store(false, Ordering::Relaxed);
        shared.next.store(0, Ordering::Relaxed);
        {
            let mut active = shared.active.lock().expect("pool active");
            *active = self.handles.len();
        }
        // SAFETY (lifetime erasure): `run` blocks below until every
        // helper has finished this generation, so `task` outlives every
        // dereference of this pointer.
        let raw: *const (dyn Fn(usize) + Sync) = task;
        let raw: *const (dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(raw) };
        let job = RawJob { task: raw, n_tasks };
        {
            let mut slot = shared.slot.lock().expect("pool slot");
            slot.job = Some(job);
            slot.generation += 1;
            shared.start.notify_all();
        }

        // The caller is a lane too: claim indices until the range drains.
        run_tasks(shared, job);

        // Wait for the helpers' completion handshake before touching the
        // borrow again (or unwinding).
        let mut active = shared.active.lock().expect("pool active");
        while *active != 0 {
            active = shared.done.wait(active).expect("pool done wait");
        }
        drop(active);

        if shared.panicked.load(Ordering::SeqCst) {
            panic!("worker pool task panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool slot");
            slot.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claims and runs task indices until the job's range is exhausted.
/// Panics are recorded and swallowed so the index counter always drains.
fn run_tasks(shared: &Shared, job: RawJob) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n_tasks {
            return;
        }
        // SAFETY: see `RawJob` — the referent is alive while any lane
        // can still claim an index.
        let task = unsafe { &*job.task };
        if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
    }
}

/// Helper thread body: wait for a generation, work it, hand shake, park.
fn helper_loop(shared: &'static Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool slot");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    break slot.job.expect("published generation carries a job");
                }
                slot = shared.start.wait(slot).expect("pool start wait");
            }
        };
        run_tasks(shared, job);
        let mut active = shared.active.lock().expect("pool active");
        *active -= 1;
        if *active == 0 {
            shared.done.notify_all();
        }
    }
}

/// The process-wide shared pool, sized to the machine
/// (`available_parallelism`), created on first use. `classify_all` and
/// the serve batcher both draw from it, so kernel parallelism is
/// coordinated instead of multiplicative.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        WorkerPool::new(parallelism)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        for parallelism in [1, 2, 4] {
            let pool = WorkerPool::new(parallelism);
            for n in [0usize, 1, 2, 3, 17, 256] {
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                pool.run(n, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "parallelism={parallelism} n={n}"
                );
            }
        }
    }

    #[test]
    fn tasks_actually_run_on_helper_threads() {
        use std::sync::{Barrier, Mutex};
        let pool = WorkerPool::new(4);
        // Both tasks rendezvous at a two-party barrier, so one thread can
        // never run both (it would deadlock against itself): the two
        // recorded ids are necessarily distinct — a helper really ran.
        // Works even on a single hardware core, where the caller would
        // otherwise drain every index before a helper gets scheduled.
        let barrier = Barrier::new(2);
        let ids = Mutex::new(Vec::new());
        pool.run(2, &|_| {
            barrier.wait();
            ids.lock().unwrap().push(std::thread::current().id());
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1], "both tasks ran on the same thread");
    }

    #[test]
    fn sequential_results_match_parallel() {
        let pool = WorkerPool::new(3);
        let n = 100usize;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(n, &|i| {
            out[i].store((i * i) as u64, Ordering::Relaxed);
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), (i * i) as u64);
        }
    }

    #[test]
    fn panicking_task_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool still works afterwards.
        let count = AtomicU64::new(0);
        pool.run(8, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn back_to_back_jobs_reuse_the_pool() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        for round in 0..200u64 {
            pool.run(16, &|i| {
                total.fetch_add(round + i as u64, Ordering::Relaxed);
            });
        }
        let expected: u64 = (0..200u64).map(|r| (0..16u64).map(|i| r + i).sum::<u64>()).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn global_pool_is_usable() {
        let pool = global();
        assert!(pool.lanes() >= 1);
        let count = AtomicU64::new(0);
        pool.run(5, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }
}
