//! # bstc — Boolean Structure Table Classification
//!
//! From-scratch implementation of the ICDE 2008 paper *"Scalable Rule-Based
//! Gene Expression Data Classification"* (Iwen, Lang & Patel):
//!
//! * [`bar`] — boolean association rules (BARs): exclusion clauses, the
//!   restricted antecedent shape of §3.2, generalized support/confidence;
//! * [`bst`] — Boolean Structure Tables (Algorithm 1), cells, cell rules;
//! * [`mod@row_bar`] — gene-row BARs (Algorithm 2 / Figure 2);
//! * [`mine`] — (MC)²BAR mining (Algorithms 3 and 4);
//! * [`rule_group`] — interesting boolean rule groups (§4.2) and the
//!   CAR ⇄ BAR correspondence of Theorem 2;
//! * [`classify`] — BSTCE (Algorithm 5), the BSTC classifier
//!   (Algorithm 6), explanations (§5.3.2), and arithmetization ablations
//!   (§8);
//! * [`compiled`] — the word-parallel, allocation-free evaluation form
//!   the trainer lowers into for serving (mask + popcount kernels,
//!   reusable [`Scratch`], and a column-major batch-sweep kernel with
//!   [`BatchScratch`] that amortizes one model pass over a whole batch);
//!   bit-identical to the reference path.
//!
//! The classifier is polynomial time/space (`O(|S|²·|G|)` to train and
//! per-query, §3.1.1/§5.3.1), parameter-free, and multi-class.
//!
//! ```
//! use bstc::BstcModel;
//! use microarray::fixtures::{section54_query, table1};
//!
//! let train = table1();
//! let model = BstcModel::train(&train);
//! // The paper's §5.4 worked example: classified as Cancer (class 0)
//! // with values 3/4 vs 3/8.
//! assert_eq!(model.classify(&section54_query()), 0);
//! let v = model.class_values(&section54_query());
//! assert!((v[0] - 0.75).abs() < 1e-12 && (v[1] - 0.375).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod bar;
pub mod bst;
pub mod classify;
pub mod classify_mc2;
pub mod compiled;
pub mod mine;
pub mod pool;
pub mod row_bar;
pub mod rule_group;

pub use bar::{display_bar, Bar, BarAntecedent, ExclusionClause, Sign};
pub use bst::{Bst, BstStats, Cell, ColumnLists, ExclusionList, ExclusionListRef, ListArena};
pub use classify::{confidence_gap_of, Arithmetization, BstcModel, CellExplanation};
pub use classify_mc2::{CompiledMc2Classifier, Mc2Classifier};
pub use compiled::{BatchScratch, CompiledBst, CompiledModel, ParBatchScratch, Scratch};
pub use mine::{mine_topk, mine_topk_per_sample, Mc2Bar};
pub use pool::WorkerPool;
pub use row_bar::{all_row_bars, row_bar};
pub use rule_group::{bar_for_car, theorem2_numbers, theorem2_round_trip, Ibrg};
