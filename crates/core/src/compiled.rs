//! The compiled, word-parallel evaluation form of BSTCE.
//!
//! [`BstcModel`] keeps each exclusion list as a sorted `Vec<ItemId>` and
//! evaluates Algorithm 5 line 4's `V_e` with a per-item `contains` loop,
//! allocating a fresh `Vec<Vec<f64>>` satisfaction table and one
//! intersection `BitSet` per column for every query. That is fine for the
//! paper's worked examples but is exactly the scan-heavy shape §3.1.1
//! criticizes, recreated at inference time.
//!
//! [`CompiledModel`] lowers a trained model into masks once, after
//! training:
//!
//! * every distinct exclusion list becomes a word-packed [`BitSet`] mask
//!   plus its precomputed length, so a `Neg` list's `V_e` is
//!   `andnot_len(mask, query) / len` and a `Pos` list's is
//!   `intersection_len(mask, query) / len` — pure AND(+NOT)+popcount
//!   kernels at a few instructions per 64 items;
//! * per-query working memory lives in a caller-owned [`Scratch`] (flat
//!   `f64` arenas for the per-unique-list satisfactions and their (c, h)
//!   fan-out, reusable bitsets for the shared-items intersection and the
//!   Min coverage sweep), so steady-state classification performs **zero
//!   heap allocations per query**;
//! * for the paper's default Min arithmetization, each column's cell
//!   values are produced by a *coverage sweep* — out-samples visited in
//!   ascending satisfaction order, each claiming its still-unassigned
//!   items in one word-parallel pass — instead of a per-cell reduction
//!   over `out_expr`, with early exit once every shared item is covered.
//!
//! The literal-satisfaction counts produced by the popcount kernels are
//! the same integers the reference scalar loops produce, every division
//! and combine runs in the same order, and blank columns are skipped on
//! both paths — so compiled class values are **bit-identical** to
//! [`BstcModel::class_values`] for all three [`Arithmetization`] variants
//! (enforced by the differential property test in
//! `tests/prop_compiled.rs`). Complexity is unchanged from Algorithm 5;
//! only the constant shrinks.

use crate::bar::Sign;
use crate::bst::Bst;
use crate::classify::{confidence_gap_of, Arithmetization, BstcModel, CellExplanation};
use crate::pool::{self, WorkerPool};
use microarray::{BitSet, ClassId, SampleId};

/// Default byte budget of one column block of the batch sweep — sized to
/// half a typical 2 MiB L2 so a block's masks stay L2-resident across the
/// whole query dimension while leaving room for the queries themselves
/// and the per-query scratch. Overridable per scratch
/// ([`BatchScratch::set_block_bytes`], surfaced as `--kernel-block-bytes`
/// on the CLI and benchmarks).
pub const DEFAULT_KERNEL_BLOCK_BYTES: usize = 1 << 20;

/// Minimum mask traffic (model mask bytes × queries) one pool lane must
/// be able to claim before the batch kernel fans out to another lane.
/// This replaces the old fixed query-count cutoff (`≤ 4 stays
/// sequential`), which both paid thread handoffs for tiny models at any
/// batch size and kept enormous models sequential for small batches:
/// the decision now tracks the actual bytes the kernel will stream.
const PARALLEL_GRAIN_BYTES: u64 = 4 << 20;

/// One class BST lowered to word-packed evaluation form.
#[derive(Clone, Debug)]
pub struct CompiledBst {
    class: ClassId,
    n_items: usize,
    n_out: usize,
    /// Original ids of the class samples (BST columns), ascending.
    class_samples: Vec<SampleId>,
    /// Item sets of the class samples (for the shared-items intersection).
    class_expr: Vec<BitSet>,
    /// Flat arena of the distinct exclusion-list masks of every column;
    /// column `c` owns `masks[col_offsets[c]..col_offsets[c + 1]]`.
    masks: Vec<BitSet>,
    /// Polarity of each mask (parallel to `masks`).
    signs: Vec<Sign>,
    /// Literal count of each mask (parallel to `masks`; 0 marks the
    /// unsatisfiable degenerate list).
    lens: Vec<u32>,
    /// Column extents into `masks`/`signs`/`lens`, length `n_cols + 1`.
    col_offsets: Vec<u32>,
    /// `idx[c * n_out + h]` = column-local index of the (c, h) pair's
    /// distinct list.
    idx: Vec<u32>,
    /// `out_expr[g]` = bitset over local out-sample indices expressing `g`
    /// (empty ⇔ black-dot row).
    out_expr: Vec<BitSet>,
    /// Item set of each local out-sample (the transpose of `out_expr`),
    /// used by the legacy Min coverage sweep and kept for it.
    out_items: Vec<BitSet>,
    /// Union of the `out_items` of every out-sample mapped to the same
    /// distinct exclusion list of a column —
    /// `group_items[col_offsets[c] + u]` covers all out-samples `h`
    /// with `idx[c * n_out + h] == u`.
    /// Out-samples that share a list always share a satisfaction
    /// (`vh[h] = per_unique[idx]`), so under Min they are guaranteed sort
    /// ties, and tied out-samples assign the same value to every cell
    /// they carve — carving the whole group in one mask pass is
    /// bit-identical to carving its members one by one, while the
    /// coverage sweep streams one mask per *distinct list* instead of
    /// one per out-sample.
    group_items: Vec<BitSet>,
}

impl CompiledBst {
    /// Lowers one reference BST into mask form.
    pub fn compile(bst: &Bst) -> CompiledBst {
        let n_items = bst.n_items();
        let n_cols = bst.n_class_samples();
        let n_out = bst.n_out_samples();

        let mut masks = Vec::new();
        let mut signs = Vec::new();
        let mut lens = Vec::new();
        let mut col_offsets = Vec::with_capacity(n_cols + 1);
        let mut idx = Vec::with_capacity(n_cols * n_out);
        let mut group_items = Vec::new();
        col_offsets.push(0u32);
        for c in 0..n_cols {
            let lo = masks.len();
            for list in bst.unique_exclusion_lists(c) {
                masks.push(BitSet::from_iter(n_items, list.items.iter().copied()));
                signs.push(list.sign);
                lens.push(list.items.len() as u32);
                group_items.push(BitSet::new(n_items));
            }
            col_offsets.push(masks.len() as u32);
            for h in 0..n_out {
                let u = bst.exclusion_list_index(c, h);
                idx.push(u as u32);
                group_items[lo + u].union_with(bst.out_sample_items(h));
            }
        }

        CompiledBst {
            class: bst.class(),
            n_items,
            n_out,
            class_samples: (0..n_cols).map(|c| bst.class_sample_id(c)).collect(),
            class_expr: (0..n_cols).map(|c| bst.class_sample_items(c).clone()).collect(),
            masks,
            signs,
            lens,
            col_offsets,
            idx,
            out_expr: (0..n_items).map(|g| bst.out_expressing(g).clone()).collect(),
            out_items: (0..n_out).map(|h| bst.out_sample_items(h).clone()).collect(),
            group_items,
        }
    }

    /// The class this table describes.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of items, `|G|`.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of class samples (columns), `|C_i|`.
    pub fn n_class_samples(&self) -> usize {
        self.class_expr.len()
    }

    /// Largest count of distinct lists in any one column (drives the
    /// scratch arena size).
    fn max_unique(&self) -> usize {
        self.col_offsets.windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }

    /// Bytes of one word-packed mask of this table.
    #[inline]
    fn mask_stride_bytes(&self) -> usize {
        self.n_items.div_ceil(64) * 8
    }

    /// Mask bytes the batch sweep streams for column `c`: its distinct
    /// exclusion-list masks, their group-union item sets (the Min carve
    /// operands), and the column's own item set (the shared-items
    /// intersection operand). This is the unit the column blocking
    /// accumulates toward the block-byte budget.
    #[inline]
    fn col_block_bytes(&self, c: usize) -> usize {
        let masks = (self.col_offsets[c + 1] - self.col_offsets[c]) as usize;
        (2 * masks + 1) * self.mask_stride_bytes()
    }

    /// Total bytes of this table's compiled masks (exclusion-list masks,
    /// their group-union item sets, and per-column item sets) — the
    /// per-query streaming footprint.
    pub fn mask_bytes(&self) -> usize {
        (self.masks.len() + self.group_items.len() + self.class_expr.len())
            * self.mask_stride_bytes()
    }

    /// `V_e` of the `u`-th mask for `query` — the popcount identity for
    /// Algorithm 5 line 4. Produces the exact count the reference per-item
    /// loop produces, hence a bit-identical quotient.
    #[inline]
    fn list_satisfaction(&self, u: usize, query: &BitSet) -> f64 {
        let len = self.lens[u];
        if len == 0 {
            return 0.0; // degenerate duplicate pair: unsatisfiable
        }
        let sat = match self.signs[u] {
            Sign::Pos => self.masks[u].intersection_len(query),
            Sign::Neg => self.masks[u].andnot_len(query),
        };
        sat as f64 / len as f64
    }

    /// BSTCE (Algorithm 5) against this table, using `scratch` for all
    /// per-query working memory. Allocation-free once `scratch` has grown
    /// to this table's shape.
    pub fn class_value(
        &self,
        query: &BitSet,
        arith: Arithmetization,
        scratch: &mut Scratch,
    ) -> f64 {
        scratch.reserve_bst(self);
        let mut col_sum = 0.0;
        let mut cols = 0usize;
        for c in 0..self.class_expr.len() {
            if !self.column_satisfactions(c, query, scratch) {
                continue; // blank column (line 13's "non-blank" filter)
            }
            let v_s = match arith {
                Arithmetization::Min => self.column_value_min(c, query, scratch),
                _ => {
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for g in scratch.shared.iter() {
                        sum += cell_value(&self.out_expr[g], &scratch.vh, arith);
                        n += 1;
                    }
                    sum / n as f64 // V_s (line 14)
                }
            };
            col_sum += v_s;
            cols += 1;
        }
        if cols == 0 {
            0.0 // the query shares nothing with this class
        } else {
            col_sum / cols as f64 // line 16
        }
    }

    /// `V_s` of a non-blank column under Min, by coverage sweep instead of
    /// per-cell reduction.
    ///
    /// Under Min a cell's value is the *smallest* satisfaction among the
    /// out-samples expressing its item, so visiting distinct-list groups
    /// ([`CompiledBst::group_items`]) in ascending satisfaction order and
    /// assigning each still-unassigned shared item in one word-parallel
    /// `AND`/`ANDNOT` pass yields every cell's exact minimum — and the
    /// sweep stops as soon as all items are covered, which on dense
    /// expression data takes a handful of groups instead of
    /// `|c ∩ q| · |out_expr|` scalar reductions.
    /// Items no out-sample expresses are the black dots (value 1). Summing
    /// the assigned values back in item order reproduces the reference
    /// path's float operations bit for bit.
    fn column_value_min(&self, c: usize, query: &BitSet, scratch: &mut Scratch) -> f64 {
        // The sweep orders *distinct-list groups*, not individual
        // out-samples: every out-sample of a group carries the same
        // satisfaction (`vh[h] = per_unique[idx]`), so the per-out-sample
        // sort could only ever interleave them as ties — and tied
        // out-samples assign the same value to every cell they carve,
        // making the cells independent of tie order. Sorting (total-order
        // key, group) u64/u32 pairs with the derived integer Ord beats
        // `total_cmp` closures measurably at this call rate; the key
        // mapping is exactly `f64::total_cmp`'s order.
        let lo = self.col_offsets[c] as usize;
        let uniq = self.col_offsets[c + 1] as usize - lo;
        scratch.order.clear();
        for u in 0..uniq {
            scratch.order.push((f64_total_order_key(scratch.per_unique[u]), u as u32));
        }
        scratch.order.sort_unstable();

        // Fused kernels keep the sweep at one memory pass per step where
        // the assign / count / difference / scan forms would take four;
        // the counts are integer popcounts and the cell writes are plain
        // stores, so fusion cannot perturb a value.
        let mut left = scratch.remaining.assign_intersection_len(query, &self.class_expr[c]);
        for &(k, u) in scratch.order.iter() {
            if left == 0 {
                break;
            }
            let v = f64_from_total_order_key(k);
            left -= scratch.remaining.carve_scatter(
                &self.group_items[lo + u as usize],
                &mut scratch.cells,
                v,
            );
        }
        if left != 0 {
            for g in scratch.remaining.iter() {
                scratch.cells[g] = 1.0; // black dot: no out-sample expresses g
            }
        }

        // Same adds in the same ascending-g order as the reference path,
        // via the decoupled extract-then-add gather.
        let (sum, n) = scratch.shared.gather_sum(&scratch.cells);
        sum / n as f64
    }

    /// Computes column `c`'s shared-item set into `scratch.shared` and, if
    /// non-blank, its per-out-sample satisfactions into `scratch.vh`.
    /// Returns false for blank columns (nothing computed beyond `shared`).
    fn column_satisfactions(&self, c: usize, query: &BitSet, scratch: &mut Scratch) -> bool {
        if scratch.shared.assign_intersection_len(query, &self.class_expr[c]) == 0 {
            return false;
        }
        // Distinct lists are evaluated once and fanned out to their (c, h)
        // pairs — the lossless form of §8's exclusion-list culling.
        let lo = self.col_offsets[c] as usize;
        let hi = self.col_offsets[c + 1] as usize;
        for u in lo..hi {
            scratch.per_unique[u - lo] = self.list_satisfaction(u, query);
        }
        let idx_row = &self.idx[c * self.n_out..(c + 1) * self.n_out];
        for (h, &u) in idx_row.iter().enumerate() {
            scratch.vh[h] = scratch.per_unique[u as usize];
        }
        true
    }

    /// [`CompiledBst::column_value_min`] frozen at its pre-SIMD form —
    /// float-keyed `total_cmp` sort, separate assign / scan / count /
    /// difference passes per out-sample, unconditional black-dot scan.
    /// Kept verbatim so `classify_bench` can report `kernel_speedup`
    /// against the *actual* previous kernel rather than against a
    /// baseline that quietly inherits the fused kernels; bit-identity
    /// with the live path is enforced by `tests/prop_compiled.rs`.
    /// Not part of the serving API.
    fn column_value_min_legacy(&self, c: usize, query: &BitSet, scratch: &mut Scratch) -> f64 {
        scratch.order_f64.clear();
        for h in 0..self.n_out {
            scratch.order_f64.push((scratch.vh[h], h as u32));
        }
        scratch.order_f64.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        scratch.remaining.assign_intersection(query, &self.class_expr[c]);
        let mut left = scratch.remaining.len();
        for &(v, h) in scratch.order_f64.iter() {
            if left == 0 {
                break;
            }
            let expr = &self.out_items[h as usize];
            scratch.newly.assign_intersection(&scratch.remaining, expr);
            for g in scratch.newly.iter() {
                scratch.cells[g] = v;
            }
            left -= scratch.newly.len();
            scratch.remaining.difference_with(expr);
        }
        for g in scratch.remaining.iter() {
            scratch.cells[g] = 1.0; // black dot: no out-sample expresses g
        }

        let mut sum = 0.0;
        let mut n = 0usize;
        for g in scratch.shared.iter() {
            sum += scratch.cells[g];
            n += 1;
        }
        sum / n as f64
    }

    /// [`CompiledBst::column_satisfactions`] with the pre-SIMD two-pass
    /// blank check (assign, then emptiness scan). Baseline counterpart of
    /// [`CompiledBst::column_value_min_legacy`].
    fn column_satisfactions_legacy(&self, c: usize, query: &BitSet, scratch: &mut Scratch) -> bool {
        scratch.shared.assign_intersection(query, &self.class_expr[c]);
        if scratch.shared.is_empty() {
            return false;
        }
        let lo = self.col_offsets[c] as usize;
        let hi = self.col_offsets[c + 1] as usize;
        for u in lo..hi {
            scratch.per_unique[u - lo] = self.list_satisfaction(u, query);
        }
        let idx_row = &self.idx[c * self.n_out..(c + 1) * self.n_out];
        for (h, &u) in idx_row.iter().enumerate() {
            scratch.vh[h] = scratch.per_unique[u as usize];
        }
        true
    }
}

impl CompiledBst {
    /// The batch sweep: evaluates this table against *every* query of a
    /// batch in one pass over the compiled masks, with the loop order
    /// inverted relative to [`CompiledBst::class_value`] — **outer over
    /// compiled columns, inner over queries** — so each column's mask
    /// block is loaded from memory once and stays cache-resident while
    /// it serves the whole batch. Per-query model traffic drops from
    /// `|model|` to `|model| / batch`, which is the whole point of
    /// cross-connection micro-batching: the serving hot path is
    /// memory-bound on the mask tables, not compute-bound.
    ///
    /// Per query the arithmetic is *identical* to the per-query kernel —
    /// the same column computations run in the same ascending column
    /// order, so each query's `col_sum` accumulates in exactly the order
    /// `class_value` uses and the result is **bit-identical** (enforced
    /// by `tests/prop_compiled.rs` across all three arithmetizations).
    ///
    /// ## Column blocking
    ///
    /// Columns are processed in **blocks sized to
    /// [`BatchScratch::set_block_bytes`]** (default
    /// [`DEFAULT_KERNEL_BLOCK_BYTES`], ≈ L2/2): each block's masks are
    /// swept across *all* queries before the next block is touched, so a
    /// model whose total masks spill the LLC still streams every mask
    /// exactly once per batch while the block stays cache-resident for
    /// the whole query dimension. Per-query `col_sum` accumulation still
    /// happens in ascending column order (blocks ascend, columns within
    /// a block ascend), so blocking reorders only *which query* runs
    /// next, never a query's own float operations — bit-identity is
    /// structural, for every block size.
    ///
    /// Fills `scratch.col_sum` / `scratch.cols`, one slot per query.
    /// With `LEGACY` set, every per-column computation routes through the
    /// frozen pre-SIMD kernels (benchmark baseline only); the flag is a
    /// const generic so the live sweep's codegen carries no baseline
    /// branches.
    fn batch_sweep<const LEGACY: bool>(
        &self,
        queries: &[BitSet],
        arith: Arithmetization,
        scratch: &mut BatchScratch,
    ) {
        scratch.inner.reserve_bst(self);
        scratch.col_sum.clear();
        scratch.col_sum.resize(queries.len(), 0.0);
        scratch.cols.clear();
        scratch.cols.resize(queries.len(), 0);
        let block_budget =
            if scratch.block_bytes == 0 { DEFAULT_KERNEL_BLOCK_BYTES } else { scratch.block_bytes };
        let n_cols = self.class_expr.len();
        let mut c0 = 0;
        while c0 < n_cols {
            // Grow the block greedily until the next column would
            // overflow the byte budget; always take at least one column.
            let mut c1 = c0 + 1;
            let mut bytes = self.col_block_bytes(c0);
            while c1 < n_cols {
                let next = self.col_block_bytes(c1);
                if bytes + next > block_budget {
                    break;
                }
                bytes += next;
                c1 += 1;
            }
            for (qi, query) in queries.iter().enumerate() {
                for c in c0..c1 {
                    let nonblank = if LEGACY {
                        self.column_satisfactions_legacy(c, query, &mut scratch.inner)
                    } else {
                        self.column_satisfactions(c, query, &mut scratch.inner)
                    };
                    if !nonblank {
                        continue; // blank column for this query
                    }
                    let v_s = match arith {
                        Arithmetization::Min if LEGACY => {
                            self.column_value_min_legacy(c, query, &mut scratch.inner)
                        }
                        Arithmetization::Min => self.column_value_min(c, query, &mut scratch.inner),
                        _ => {
                            let mut sum = 0.0;
                            let mut n = 0usize;
                            for g in scratch.inner.shared.iter() {
                                sum += cell_value(&self.out_expr[g], &scratch.inner.vh, arith);
                                n += 1;
                            }
                            sum / n as f64
                        }
                    };
                    scratch.col_sum[qi] += v_s;
                    scratch.cols[qi] += 1;
                }
            }
            c0 = c1;
        }
    }
}

/// Reusable working memory for the batch-sweep kernel: the per-(column,
/// query) temporaries of a single [`Scratch`] plus flat per-query
/// accumulator arenas. Like [`Scratch`], buffers grow to the largest
/// (model shape, batch size) seen and are then reused, so steady-state
/// batch classification performs **zero heap allocations** (asserted by
/// `tests/alloc_free.rs`).
#[derive(Clone, Debug, Default)]
pub struct BatchScratch {
    /// Per-(column, query) temporaries, shared across the batch.
    inner: Scratch,
    /// Per-query running sum of non-blank column values (`Σ V_s`).
    col_sum: Vec<f64>,
    /// Per-query count of non-blank columns.
    cols: Vec<u32>,
    /// Class values of the last batch, `values[q * n_classes + class]`.
    values: Vec<f64>,
    /// Stride of `values` (classes of the last model evaluated).
    n_classes: usize,
    /// Column-block byte budget of the sweep; 0 means
    /// [`DEFAULT_KERNEL_BLOCK_BYTES`].
    block_bytes: usize,
}

impl BatchScratch {
    /// An empty batch scratch; buffers are grown on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Pre-sizes the per-model buffers (the per-batch arenas still grow
    /// on the first batch of each size).
    pub fn for_model(model: &CompiledModel) -> BatchScratch {
        BatchScratch { inner: Scratch::for_model(model), ..BatchScratch::default() }
    }

    /// Sets the column-block byte budget of the batch sweep
    /// (`--kernel-block-bytes`); 0 restores
    /// [`DEFAULT_KERNEL_BLOCK_BYTES`]. Affects cache behavior only —
    /// results are bit-identical for every block size.
    pub fn set_block_bytes(&mut self, bytes: usize) {
        self.block_bytes = bytes;
    }

    /// Class values of query `q` from the most recent
    /// [`CompiledModel::class_values_batch_into`] call, indexed by
    /// `ClassId`.
    pub fn values_of(&self, q: usize) -> &[f64] {
        &self.values[q * self.n_classes..(q + 1) * self.n_classes]
    }
}

/// Reusable working memory for the **multi-core** batch kernel: one
/// [`BatchScratch`] per pool lane plus a shared per-query class-value
/// arena the lanes write disjoint chunks of. Like the other scratches,
/// every buffer grows to the largest (model, batch, lane-count) shape
/// seen and is then reused — steady-state pooled batch classification
/// performs **zero heap allocations** (asserted by
/// `tests/alloc_free.rs`).
#[derive(Debug, Default)]
pub struct ParBatchScratch {
    /// Per-lane sweep scratches; lane `i` of a pooled call owns slot `i`.
    lanes: Vec<BatchScratch>,
    /// Class values of the last batch, `values[q * n_classes + class]`.
    values: Vec<f64>,
    /// Stride of `values` (classes of the last model evaluated).
    n_classes: usize,
    /// Column-block byte budget, propagated to every lane; 0 means
    /// [`DEFAULT_KERNEL_BLOCK_BYTES`].
    block_bytes: usize,
}

impl ParBatchScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> ParBatchScratch {
        ParBatchScratch::default()
    }

    /// Pre-sizes `lanes` sweep scratches for `model` (the per-batch
    /// arenas still grow on the first batch of each size).
    pub fn for_model(model: &CompiledModel, lanes: usize) -> ParBatchScratch {
        ParBatchScratch {
            lanes: (0..lanes.max(1)).map(|_| BatchScratch::for_model(model)).collect(),
            ..ParBatchScratch::default()
        }
    }

    /// Sets the column-block byte budget of every lane's sweep
    /// (`--kernel-block-bytes`); 0 restores
    /// [`DEFAULT_KERNEL_BLOCK_BYTES`].
    pub fn set_block_bytes(&mut self, bytes: usize) {
        self.block_bytes = bytes;
    }

    /// The configured column-block byte budget (0 = default).
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Class values of query `q` from the most recent
    /// [`CompiledModel::class_values_batch_par_into`] call, indexed by
    /// `ClassId`.
    pub fn values_of(&self, q: usize) -> &[f64] {
        &self.values[q * self.n_classes..(q + 1) * self.n_classes]
    }
}

/// A raw pointer the pooled kernel may share across lanes. Safety rests
/// on the caller handing each lane a disjoint region (see the SAFETY
/// notes at the use sites).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. A method (not field access) so closures
    /// capture the `Sync` wrapper, not the raw pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: `SendPtr` is only a capability to *form* references inside
// pool tasks; disjointness of the actual accesses is argued at each use.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Cell value of a non-empty (g, c) cell (Algorithm 5 lines 7–11) given
/// the column's fanned-out satisfactions.
#[inline]
fn cell_value(out: &BitSet, vh: &[f64], arith: Arithmetization) -> f64 {
    if out.is_empty() {
        return 1.0; // black dot
    }
    arith.combine(out.iter().map(|h| vh[h]))
}

/// Reusable per-thread working memory for compiled classification.
///
/// Create one per worker thread ([`Scratch::new`] is trivially cheap) and
/// pass it to every call; buffers grow to the largest model shape seen and
/// are then reused, so the steady state performs no per-query heap
/// allocation. A scratch may be shared across models — it simply regrows
/// when a larger one arrives (e.g. after a serve-time hot reload).
#[derive(Clone, Debug)]
pub struct Scratch {
    /// Satisfaction per distinct list of the current column.
    per_unique: Vec<f64>,
    /// The column's satisfactions fanned out per local out-sample.
    vh: Vec<f64>,
    /// Reusable `query ∩ column` intersection buffer.
    shared: BitSet,
    /// Per-class classification values of the last query.
    values: Vec<f64>,
    /// Min sweep: per-item cell values of the current column.
    cells: Vec<f64>,
    /// Min sweep: shared items not yet covered by an out-sample.
    remaining: BitSet,
    /// Min sweep: items covered by the current out-sample.
    newly: BitSet,
    /// Min sweep: (total-order satisfaction key, out-sample) pairs,
    /// sorted ascending — see [`f64_total_order_key`].
    order: Vec<(u64, u32)>,
    /// Float-keyed sort buffer of the frozen benchmark baseline
    /// (`column_value_min_legacy`); empty unless the legacy path runs.
    order_f64: Vec<(f64, u32)>,
}

/// Maps an `f64` to a `u64` whose unsigned order is exactly
/// [`f64::total_cmp`]'s order (the IEEE 754 totalOrder trick: flip all
/// bits of negatives, flip only the sign bit of non-negatives), so the
/// Min sweep can sort plain integers.
#[inline]
fn f64_total_order_key(v: f64) -> u64 {
    let b = v.to_bits();
    b ^ ((((b as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Inverse of [`f64_total_order_key`], bit-exact.
#[inline]
fn f64_from_total_order_key(k: u64) -> f64 {
    f64::from_bits(k ^ (if k >> 63 == 1 { 0x8000_0000_0000_0000 } else { !0u64 }))
}

impl Default for Scratch {
    fn default() -> Scratch {
        Scratch::new()
    }
}

impl Scratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> Scratch {
        Scratch {
            per_unique: Vec::new(),
            vh: Vec::new(),
            shared: BitSet::new(0),
            values: Vec::new(),
            cells: Vec::new(),
            remaining: BitSet::new(0),
            newly: BitSet::new(0),
            order: Vec::new(),
            order_f64: Vec::new(),
        }
    }

    /// Pre-sizes every buffer for `model`, so even the first query is
    /// allocation-free.
    pub fn for_model(model: &CompiledModel) -> Scratch {
        let mut s = Scratch::new();
        for bst in &model.bsts {
            s.reserve_bst(bst);
        }
        s.values.resize(model.n_classes(), 0.0);
        s
    }

    /// Grows the per-column buffers to fit `bst` (no-op once large enough).
    fn reserve_bst(&mut self, bst: &CompiledBst) {
        let uniq = bst.max_unique();
        if self.per_unique.len() < uniq {
            self.per_unique.resize(uniq, 0.0);
        }
        if self.vh.len() < bst.n_out {
            self.vh.resize(bst.n_out, 0.0);
        }
        if self.shared.capacity() != bst.n_items {
            self.shared = BitSet::new(bst.n_items);
        }
        if self.cells.len() < bst.n_items {
            self.cells.resize(bst.n_items, 0.0);
        }
        if self.remaining.capacity() != bst.n_items {
            self.remaining = BitSet::new(bst.n_items);
        }
        if self.newly.capacity() != bst.n_items {
            self.newly = BitSet::new(bst.n_items);
        }
        if self.order.capacity() < bst.n_out {
            self.order.clear();
            self.order.reserve(bst.n_out);
        }
        if self.order_f64.capacity() < bst.n_out {
            self.order_f64.clear();
            self.order_f64.reserve(bst.n_out);
        }
    }

    /// Class values of the most recent
    /// [`CompiledModel::class_values_into`] / [`CompiledModel::classify`]
    /// call, indexed by `ClassId`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A trained BSTC model lowered to word-parallel evaluation form: one
/// [`CompiledBst`] per class plus the training-time arithmetization.
///
/// Produced by [`BstcModel::compile`]; predictions and class values are
/// bit-identical to the reference model's.
#[derive(Clone, Debug)]
pub struct CompiledModel {
    bsts: Vec<CompiledBst>,
    arith: Arithmetization,
}

impl CompiledModel {
    /// Lowers every class BST of `model`.
    ///
    /// Records its wall time as stage `compile` in [`obs::global`].
    pub fn compile(model: &BstcModel) -> CompiledModel {
        let _stage = obs::Stage::enter("compile");
        CompiledModel {
            bsts: (0..model.n_classes()).map(|c| CompiledBst::compile(model.bst(c))).collect(),
            arith: model.arithmetization(),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.bsts.len()
    }

    /// The arithmetization the model was trained with.
    pub fn arithmetization(&self) -> Arithmetization {
        self.arith
    }

    /// The compiled BST of one class.
    pub fn bst(&self, class: ClassId) -> &CompiledBst {
        &self.bsts[class]
    }

    /// BSTCE classification value of `query` against one class.
    pub fn class_value(&self, class: ClassId, query: &BitSet, scratch: &mut Scratch) -> f64 {
        self.bsts[class].class_value(query, self.arith, scratch)
    }

    /// Computes every class value into `scratch` (read them back via
    /// [`Scratch::values`]). Allocation-free in the steady state.
    pub fn class_values_into(&self, query: &BitSet, scratch: &mut Scratch) {
        if scratch.values.len() != self.bsts.len() {
            scratch.values.resize(self.bsts.len(), 0.0);
        }
        for (i, bst) in self.bsts.iter().enumerate() {
            let v = bst.class_value(query, self.arith, scratch);
            scratch.values[i] = v;
        }
    }

    /// Classification values for every class, indexed by `ClassId`
    /// (allocates the returned vector; use
    /// [`CompiledModel::class_values_into`] on hot paths).
    pub fn class_values(&self, query: &BitSet, scratch: &mut Scratch) -> Vec<f64> {
        self.class_values_into(query, scratch);
        scratch.values.clone()
    }

    /// BSTC (Algorithm 6): the smallest class index with maximal value.
    /// Allocation-free in the steady state.
    pub fn classify(&self, query: &BitSet, scratch: &mut Scratch) -> ClassId {
        self.class_values_into(query, scratch);
        let values = &scratch.values;
        let mut best = 0;
        for (i, &v) in values.iter().enumerate().skip(1) {
            if v > values[best] {
                best = i;
            }
        }
        best
    }

    /// The §8 confidence heuristic on the compiled path (single-pass
    /// top-2, no sort, no allocation).
    pub fn confidence_gap(&self, query: &BitSet, scratch: &mut Scratch) -> f64 {
        self.class_values_into(query, scratch);
        confidence_gap_of(&scratch.values)
    }

    /// Computes every class value of every query in `queries` with the
    /// inverted batch-sweep kernel — each class table's masks stream
    /// through cache once for the whole batch instead of once per query.
    /// Read the results back via [`BatchScratch::values_of`].
    /// Allocation-free once `scratch` has grown to this model's shape and
    /// the batch size. Bit-identical to calling
    /// [`CompiledModel::class_values_into`] per query.
    pub fn class_values_batch_into(&self, queries: &[BitSet], scratch: &mut BatchScratch) {
        self.batch_into::<false>(queries, scratch)
    }

    /// [`CompiledModel::class_values_batch_into`] routed through the
    /// frozen pre-SIMD per-column kernels (`*_legacy`): the separate
    /// assign / count / difference passes and `total_cmp` float sort the
    /// sweep used before the fused SIMD kernels landed. This is the
    /// baseline `classify_bench` times for `kernel_speedup` — measuring
    /// the live path with vectorization disabled would still credit the
    /// baseline with the pass-fusion wins and understate the change.
    /// Bit-identical to the live path (`tests/prop_compiled.rs`); not
    /// part of the serving API.
    #[doc(hidden)]
    pub fn class_values_batch_into_legacy(&self, queries: &[BitSet], scratch: &mut BatchScratch) {
        self.batch_into::<true>(queries, scratch)
    }

    fn batch_into<const LEGACY: bool>(&self, queries: &[BitSet], scratch: &mut BatchScratch) {
        scratch.n_classes = self.bsts.len();
        let n = queries.len() * self.bsts.len();
        scratch.values.clear();
        scratch.values.resize(n, 0.0);
        for (class, bst) in self.bsts.iter().enumerate() {
            bst.batch_sweep::<LEGACY>(queries, self.arith, scratch);
            for qi in 0..queries.len() {
                let v = if scratch.cols[qi] == 0 {
                    0.0 // the query shares nothing with this class
                } else {
                    scratch.col_sum[qi] / scratch.cols[qi] as f64
                };
                scratch.values[qi * scratch.n_classes + class] = v;
            }
        }
    }

    /// Batch form of [`CompiledModel::classify`]: predictions for every
    /// query of a batch via one model pass, appended to `out` (cleared
    /// first). Argmax ties break to the smallest class index, exactly as
    /// the per-query path. Allocation-free in the steady state.
    pub fn classify_batch_into(
        &self,
        queries: &[BitSet],
        scratch: &mut BatchScratch,
        out: &mut Vec<ClassId>,
    ) {
        self.class_values_batch_into(queries, scratch);
        out.clear();
        for qi in 0..queries.len() {
            let values = scratch.values_of(qi);
            let mut best = 0;
            for (i, &v) in values.iter().enumerate().skip(1) {
                if v > values[best] {
                    best = i;
                }
            }
            out.push(best);
        }
    }

    /// Total bytes of the compiled mask tables across every class — the
    /// traffic one query streams through cache, and (×batch) the work
    /// estimate driving the sequential-vs-parallel decision. Recorded by
    /// `classify_bench` as `mask_working_set_bytes`.
    pub fn mask_bytes(&self) -> usize {
        self.bsts.iter().map(|b| b.mask_bytes()).sum()
    }

    /// How many pool lanes a batch of `n_queries` should fan out to:
    /// one lane per [`PARALLEL_GRAIN_BYTES`] of streamed mask traffic
    /// (`mask_bytes × n_queries`), clamped to the batch size and the
    /// pool width. A tiny model never leaves the calling thread no
    /// matter how many queries arrive; a model whose single pass already
    /// dwarfs the grain parallelizes even a two-query batch.
    fn parallel_lanes(&self, n_queries: usize, pool_lanes: usize) -> usize {
        let work = self.mask_bytes() as u64 * n_queries as u64;
        let by_work = usize::try_from(work / PARALLEL_GRAIN_BYTES).unwrap_or(usize::MAX);
        by_work.clamp(1, pool_lanes.min(n_queries.max(1)))
    }

    /// Multi-core form of [`CompiledModel::class_values_batch_into`]: the
    /// query dimension is split into contiguous chunks across `pool`
    /// lanes, each lane running the blocked column-outer sweep over its
    /// chunk with its own [`BatchScratch`] — so per-lane loop order (and
    /// hence every query's float-operation order) is exactly the
    /// single-threaded kernel's, and results are **bit-identical** to N
    /// per-query calls regardless of lane count. Read results back via
    /// [`ParBatchScratch::values_of`]. Allocation-free once `scratch` has
    /// grown to the model shape, batch size, and lane count. Batches
    /// whose total mask traffic is below the parallel grain stay on the
    /// calling thread.
    pub fn class_values_batch_par_into(
        &self,
        queries: &[BitSet],
        pool: &WorkerPool,
        scratch: &mut ParBatchScratch,
    ) {
        let lanes = self.parallel_lanes(queries.len(), pool.lanes());
        self.class_values_batch_par_into_lanes(queries, pool, scratch, lanes);
    }

    /// [`CompiledModel::class_values_batch_par_into`] with the lane count
    /// pinned instead of derived from mask traffic. Exposed for tests
    /// that need the multi-lane path on models far below the parallel
    /// grain; not part of the public API.
    #[doc(hidden)]
    pub fn class_values_batch_par_into_lanes(
        &self,
        queries: &[BitSet],
        pool: &WorkerPool,
        scratch: &mut ParBatchScratch,
        lanes: usize,
    ) {
        let n_classes = self.bsts.len();
        scratch.n_classes = n_classes;
        scratch.values.clear();
        scratch.values.resize(queries.len() * n_classes, 0.0);
        let lanes = lanes.clamp(1, pool.lanes().min(queries.len().max(1)));
        if scratch.lanes.len() < lanes {
            scratch.lanes.resize_with(lanes, BatchScratch::new);
        }
        for lane in &mut scratch.lanes {
            lane.block_bytes = scratch.block_bytes;
        }
        if lanes <= 1 {
            let lane = &mut scratch.lanes[0];
            self.class_values_batch_into(queries, lane);
            scratch.values.copy_from_slice(&lane.values[..queries.len() * n_classes]);
            return;
        }
        let chunk = queries.len().div_ceil(lanes);
        let lanes_ptr = SendPtr(scratch.lanes.as_mut_ptr());
        let values_ptr = SendPtr(scratch.values.as_mut_ptr());
        pool.run(lanes, &|i| {
            let start = i * chunk;
            let end = ((i + 1) * chunk).min(queries.len());
            if start >= end {
                return;
            }
            // SAFETY: task indices are distinct and executed exactly once
            // (pool contract), so lane `i` exclusively owns
            // `scratch.lanes[i]` and the `values` range of its query
            // chunk; `pool.run` returns only after every task finished.
            let lane = unsafe { &mut *lanes_ptr.get().add(i) };
            self.class_values_batch_into(&queries[start..end], lane);
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    values_ptr.get().add(start * n_classes),
                    (end - start) * n_classes,
                )
            };
            dst.copy_from_slice(&lane.values[..(end - start) * n_classes]);
        });
    }

    /// Batch classification over the shared worker pool: predictions for
    /// every query, appended to `out` (cleared first), computed by the
    /// blocked multi-core sweep. Argmax ties break to the smallest class
    /// index, exactly as the per-query path. Allocation-free in the
    /// steady state.
    pub fn classify_batch_par_into(
        &self,
        queries: &[BitSet],
        pool: &WorkerPool,
        scratch: &mut ParBatchScratch,
        out: &mut Vec<ClassId>,
    ) {
        self.class_values_batch_par_into(queries, pool, scratch);
        out.clear();
        for qi in 0..queries.len() {
            let values = scratch.values_of(qi);
            let mut best = 0;
            for (i, &v) in values.iter().enumerate().skip(1) {
                if v > values[best] {
                    best = i;
                }
            }
            out.push(best);
        }
    }

    /// Classifies a batch with the blocked batch-sweep kernel, fanned out
    /// across the process-wide worker pool ([`pool::global`]) with one
    /// [`BatchScratch`] per lane. Batches too small to amortize a lane
    /// handoff (by mask traffic, not query count) stay on the calling
    /// thread.
    pub fn classify_all(&self, queries: &[BitSet]) -> Vec<ClassId> {
        let mut scratch = ParBatchScratch::new();
        let mut out = Vec::with_capacity(queries.len());
        self.classify_batch_par_into(queries, pool::global(), &mut scratch, &mut out);
        out
    }

    /// §5.3.2 explanations on the compiled path — same cells, same
    /// satisfactions, same order as [`BstcModel::explain`]. Allocates only
    /// the returned vector.
    pub fn explain(
        &self,
        class: ClassId,
        query: &BitSet,
        threshold: f64,
        scratch: &mut Scratch,
    ) -> Vec<CellExplanation> {
        let bst = &self.bsts[class];
        scratch.reserve_bst(bst);
        let mut out = Vec::new();
        for c in 0..bst.class_expr.len() {
            if !bst.column_satisfactions(c, query, scratch) {
                continue;
            }
            for g in scratch.shared.iter() {
                let v = cell_value(&bst.out_expr[g], &scratch.vh, self.arith);
                if v >= threshold {
                    out.push(CellExplanation {
                        class,
                        item: g,
                        supporting_sample: bst.class_samples[c],
                        satisfaction: v,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.satisfaction.total_cmp(&a.satisfaction));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::{section54_query, table1};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn compiled_values_match_figure_3() {
        let d = table1();
        let model = BstcModel::train(&d);
        let compiled = model.compile();
        let mut scratch = Scratch::for_model(&compiled);
        let q = section54_query();
        assert!(close(compiled.class_value(0, &q, &mut scratch), 0.75));
        assert!(close(compiled.class_value(1, &q, &mut scratch), 0.375));
        assert_eq!(compiled.classify(&q, &mut scratch), 0);
    }

    #[test]
    fn compiled_matches_reference_bit_for_bit_on_table1() {
        let d = table1();
        for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
            let model = BstcModel::train_with(&d, arith);
            let compiled = model.compile();
            let mut scratch = Scratch::new();
            let mut queries: Vec<BitSet> = d.samples().to_vec();
            queries.push(section54_query());
            queries.push(BitSet::new(6));
            queries.push(BitSet::full(6));
            for q in &queries {
                assert_eq!(
                    model.class_values(q),
                    compiled.class_values(q, &mut scratch),
                    "{arith:?}"
                );
                assert_eq!(model.classify(q), compiled.classify(q, &mut scratch));
                assert_eq!(
                    model.confidence_gap(q),
                    compiled.confidence_gap(q, &mut scratch),
                    "{arith:?}"
                );
            }
        }
    }

    #[test]
    fn compiled_explanations_match_reference() {
        let d = table1();
        let model = BstcModel::train(&d);
        let compiled = model.compile();
        let mut scratch = Scratch::new();
        let q = section54_query();
        for class in 0..2 {
            for threshold in [0.0, 0.5, 1.0] {
                assert_eq!(
                    model.explain(class, &q, threshold),
                    compiled.explain(class, &q, threshold, &mut scratch)
                );
            }
        }
    }

    #[test]
    fn classify_all_matches_sequential_classify() {
        let d = table1();
        let model = BstcModel::train(&d);
        let compiled = model.compile();
        let mut scratch = Scratch::new();
        // Enough queries to cross the batch-parallel cutoff.
        let queries: Vec<BitSet> =
            (0..64).map(|i| BitSet::from_iter(6, (0..6).filter(|g| (i >> g) & 1 == 1))).collect();
        let batch = compiled.classify_all(&queries);
        let one_by_one: Vec<_> =
            queries.iter().map(|q| compiled.classify(q, &mut scratch)).collect();
        assert_eq!(batch, one_by_one);
        assert_eq!(batch, model.classify_all(&queries));
    }

    #[test]
    fn scratch_regrows_across_models() {
        // A scratch sized for one model must transparently serve a larger
        // one (the serve hot-reload case) and a smaller one.
        let d = table1();
        let small = BstcModel::train(&d).compile();
        let big_data = microarray::synth::BoolSynthConfig {
            name: "grow".into(),
            n_items: 300,
            class_sizes: vec![8, 9],
            class_names: vec!["a".into(), "b".into()],
            markers_per_class: 40,
            marker_on: 0.9,
            background_on: 0.2,
            seed: 11,
        }
        .generate();
        let big = BstcModel::train(&big_data).compile();
        let mut scratch = Scratch::for_model(&small);
        assert_eq!(small.classify(&section54_query(), &mut scratch), 0);
        let q = big_data.sample(0).clone();
        assert_eq!(big.classify(&q, &mut scratch), BstcModel::train(&big_data).classify(&q));
        assert_eq!(small.classify(&section54_query(), &mut scratch), 0);
    }

    #[test]
    fn total_order_key_is_total_cmp_and_invertible() {
        let vals = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ];
        for &a in &vals {
            assert_eq!(f64_from_total_order_key(f64_total_order_key(a)).to_bits(), a.to_bits());
            for &b in &vals {
                assert_eq!(
                    f64_total_order_key(a).cmp(&f64_total_order_key(b)),
                    a.total_cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
    }
}
