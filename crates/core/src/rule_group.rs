//! Interesting boolean rule groups (§4.2) and the CAR ⇄ BAR
//! correspondence (§4.3, Theorem 2).
//!
//! An IBRG collects every conjunction of simple 100 %-confident BAR
//! antecedents sharing one support set `S`; its *upper bound* is the
//! (unique) maximally complex member — the closed item set of `S` — and
//! its *lower bounds* are the minimal item subsets still supported exactly
//! by `S`. Every (MC)²BAR mined by Algorithm 3 is the upper bound of a
//! unique IBRG.

use crate::bar::Bar;
use crate::bst::Bst;
use crate::mine::Mc2Bar;
use microarray::{BitSet, BoolDataset, ItemId};
use serde::{Deserialize, Serialize};

/// An interesting boolean rule group, identified by its support set and
/// carrying its upper bound.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ibrg {
    /// Consequent class.
    pub class: microarray::ClassId,
    /// The antecedent support set (local class-sample indices).
    pub support: BitSet,
    /// The unique upper bound: the closed item set of `support`.
    pub upper_bound: Vec<ItemId>,
}

impl Ibrg {
    /// Builds the IBRG an (MC)²BAR is the upper bound of.
    pub fn from_mc2bar(rule: &Mc2Bar) -> Ibrg {
        Ibrg {
            class: rule.class,
            support: rule.support.clone(),
            upper_bound: rule.car_items.clone(),
        }
    }

    /// Support set of a pure item conjunction within the class (local
    /// column indices).
    pub fn class_support_of(bst: &Bst, items: &[ItemId]) -> BitSet {
        let mut s = BitSet::new(bst.n_class_samples());
        for c in 0..bst.n_class_samples() {
            if items.iter().all(|&g| bst.class_sample_items(c).contains(g)) {
                s.insert(c);
            }
        }
        s
    }

    /// Group membership (Definition 1): `items` is in the group iff its
    /// class support set equals the group's support set. (All members are
    /// automatically ⊆ the upper bound.)
    pub fn contains(&self, bst: &Bst, items: &[ItemId]) -> bool {
        Self::class_support_of(bst, items) == self.support
    }

    /// True if `items` is an upper bound of this group: a member no proper
    /// superset of which is also a member. The closed set is the unique
    /// upper bound, so this is an equality check.
    pub fn is_upper_bound(&self, items: &[ItemId]) -> bool {
        let mut sorted = items.to_vec();
        sorted.sort_unstable();
        sorted == self.upper_bound
    }

    /// True if `items` is a lower bound: a member none of whose proper
    /// subsets is a member (removing any single item changes the support).
    pub fn is_lower_bound(&self, bst: &Bst, items: &[ItemId]) -> bool {
        if !self.contains(bst, items) {
            return false;
        }
        // Removing any one item must grow the support strictly.
        for skip in 0..items.len() {
            let reduced: Vec<ItemId> =
                items.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, &g)| g).collect();
            if Self::class_support_of(bst, &reduced) == self.support {
                return false;
            }
        }
        true
    }
}

/// Theorem 2, "⇒" direction: builds the 100 %-confident BST-generated BAR
/// for a pure conjunction (CAR antecedent). Returns `None` when no class
/// sample expresses all items (no support — no rule). The result has the
/// same support as the CAR, and exclusion clauses actively excluding
/// exactly the out-samples that satisfy the conjunction.
pub fn bar_for_car(bst: &Bst, items: &[ItemId]) -> Option<Bar> {
    let support = Ibrg::class_support_of(bst, items);
    if support.is_empty() {
        return None;
    }
    let excluded: Vec<usize> = (0..bst.n_out_samples())
        .filter(|&h| items.iter().all(|&g| bst.out_sample_items(h).contains(g)))
        .collect();
    let rule = Mc2Bar { class: bst.class(), car_items: items.to_vec(), support, excluded };
    Some(rule.to_bar(bst))
}

/// Theorem 2's confidence identity: for a CAR with support `supp` and
/// confidence `c`, the BAR's clauses actively exclude `(1/c − 1)·|supp|`
/// out-samples. Returns `(support, actively_excluded, reconstructed_conf)`.
pub fn theorem2_numbers(bst: &Bst, items: &[ItemId]) -> Option<(usize, usize, f64)> {
    let bar = bar_for_car(bst, items)?;
    let support = bar.antecedent.disjuncts.len();
    let excluded = bar.antecedent.disjuncts.first().map_or(0, Vec::len);
    let conf = support as f64 / (support + excluded) as f64;
    Some((support, excluded, conf))
}

/// Convenience: verifies the Theorem 2 round-trip on a dataset — the CAR
/// obtained by stripping `bar_for_car(items)` has the predicted support
/// and confidence. Used heavily by the property-test suites.
pub fn theorem2_round_trip(data: &BoolDataset, bst: &Bst, items: &[ItemId]) -> bool {
    let Some(bar) = bar_for_car(bst, items) else {
        return true; // unsupported conjunctions have no rule: vacuous
    };
    // The full BAR is 100% confident with the CAR's class support…
    let class_support: Vec<usize> = (0..data.n_samples())
        .filter(|&s| {
            data.label(s) == bst.class() && items.iter().all(|&g| data.sample(s).contains(g))
        })
        .collect();
    if bar.support_set(data) != class_support {
        return false;
    }
    if bar.confidence(data) != Some(1.0) {
        return false;
    }
    // …and stripping reconstructs the CAR's confidence.
    let car = bar.strip_to_car();
    let Some((supp, excl, predicted)) = theorem2_numbers(bst, items) else {
        return false;
    };
    car.support(data) == supp
        && car.confidence(data).is_some_and(|c| (c - predicted).abs() < 1e-12)
        && {
            // #excluded = (1/c − 1)·|supp| as stated in the theorem.
            let c = car.confidence(data).unwrap();
            ((1.0 / c - 1.0) * supp as f64 - excl as f64).abs() < 1e-9
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mine::mine_topk;
    use microarray::fixtures::table1;

    fn cancer() -> (BoolDataset, Bst) {
        let d = table1();
        let bst = Bst::build(&d, 0);
        (d, bst)
    }

    #[test]
    fn section_4_2_s2_group_bounds() {
        // The boolean rule group with support {s2}: upper bound
        // {g1,g3,g6}; lower bounds {g1,g6} and {g3,g6} (the paper lists
        // "(g1 AND g6)" and "(g3 AND g6 AND clauses)" as the lower bounds).
        let (_, bst) = cancer();
        let group =
            Ibrg { class: 0, support: BitSet::from_iter(3, [1]), upper_bound: vec![0, 2, 5] };
        assert!(group.contains(&bst, &[0, 5])); // g1, g6
        assert!(group.contains(&bst, &[2, 5])); // g3, g6
        assert!(group.contains(&bst, &[0, 2, 5]));
        assert!(!group.contains(&bst, &[0])); // g1 alone supports {s1,s2}
        assert!(group.is_upper_bound(&[0, 2, 5]));
        assert!(!group.is_upper_bound(&[0, 5]));
        assert!(group.is_lower_bound(&bst, &[0, 5]));
        assert!(group.is_lower_bound(&bst, &[2, 5]));
        assert!(!group.is_lower_bound(&bst, &[0, 2, 5]));
    }

    #[test]
    fn mined_rules_are_upper_bounds_of_their_groups() {
        let (_, bst) = cancer();
        for rule in mine_topk(&bst, 50) {
            if rule.car_items.is_empty() {
                continue;
            }
            let group = Ibrg::from_mc2bar(&rule);
            assert!(group.contains(&bst, &rule.car_items));
            assert!(group.is_upper_bound(&rule.car_items));
        }
    }

    #[test]
    fn bar_for_car_g1_g3() {
        // §2's example CAR g1,g3 ⇒ Cancer: support {s1,s2}, confidence 1 —
        // no Healthy sample expresses both, so the BAR needs no clauses.
        let (d, bst) = cancer();
        let bar = bar_for_car(&bst, &[0, 2]).unwrap();
        assert_eq!(bar.support_set(&d), vec![0, 1]);
        assert_eq!(bar.confidence(&d), Some(1.0));
        assert!(bar.antecedent.disjuncts.iter().all(|d| d.is_empty()));
    }

    #[test]
    fn bar_for_car_g3_needs_clauses() {
        // g3 alone is expressed by Healthy s4 and s5: the BAR must exclude
        // both, and stripping it leaves confidence 2/4 = 1/2.
        let (d, bst) = cancer();
        let bar = bar_for_car(&bst, &[2]).unwrap();
        assert_eq!(bar.confidence(&d), Some(1.0));
        assert_eq!(bar.support_set(&d), vec![0, 1]);
        let (supp, excl, conf) = theorem2_numbers(&bst, &[2]).unwrap();
        assert_eq!((supp, excl), (2, 2));
        assert!((conf - 0.5).abs() < 1e-12);
        assert!((bar.strip_to_car().confidence(&d).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bar_for_unsupported_car_is_none() {
        let (_, bst) = cancer();
        // No Cancer sample expresses both g4 and g5.
        assert!(bar_for_car(&bst, &[3, 4]).is_none());
    }

    #[test]
    fn round_trip_holds_for_all_small_cars() {
        let (d, bst) = cancer();
        // Every 1- and 2-item conjunction.
        for a in 0..6 {
            assert!(theorem2_round_trip(&d, &bst, &[a]), "item {a}");
            for b in a + 1..6 {
                assert!(theorem2_round_trip(&d, &bst, &[a, b]), "items {a},{b}");
            }
        }
    }

    #[test]
    fn round_trip_holds_for_healthy_class_too() {
        let d = table1();
        let bst = Bst::build(&d, 1);
        for a in 0..6 {
            for b in a..6 {
                let items = if a == b { vec![a] } else { vec![a, b] };
                assert!(theorem2_round_trip(&d, &bst, &items), "{items:?}");
            }
        }
    }
}
