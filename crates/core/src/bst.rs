//! Boolean Structure Tables (§3.1, Algorithm 1).
//!
//! A BST for class `C_i` is conceptually a `|G| × |C_i|` table whose
//! (g, c) cell is
//!
//! * **empty** when sample `c` does not express item `g`;
//! * a **black dot** when `c` expresses `g` and *no* out-of-class sample
//!   does (the item alone is 100 % class-pure);
//! * otherwise the set of **exclusion lists** `{E(c,h) : h ∉ C_i, g ∈ h}` —
//!   one canonical list per (c, h) pair, shared across all cells of row
//!   `c`'s column, exactly the list Algorithm 1 memoizes via its pointer
//!   array.
//!
//! We therefore materialize only (a) the per-pair exclusion lists and
//! (b) per-item bitsets of out-of-class samples expressing the item; cells
//! are views assembled on demand. This preserves Algorithm 1's
//! `O((|S|−|C_i|)·|G|·|C_i|)` space/time bound with a much smaller
//! constant.
//!
//! Exclusion lists live in a per-class [`ListArena`]: one flat item
//! buffer plus an `(offset, len, sign)` entry table, grouped by column.
//! Construction interns each (c, h) difference **before** it is ever
//! converted to an item vector — the difference bitset is hashed in
//! place and probed against the column's intern table, so only the
//! first occurrence of a distinct list is materialized. Peak memory
//! therefore scales with distinct list *content*, not with the
//! `|C_i|·(|S|−|C_i|)` pair count that used to allocate one heap `Vec`
//! per pair (see DESIGN.md §13).

use crate::bar::{Bar, BarAntecedent, ExclusionClause, Sign};
use microarray::{BitSet, BoolDataset, ClassId, ItemId, SampleId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;

/// A canonical exclusion list for one (class-sample, out-sample) pair.
///
/// Per Algorithm 1: the list is `{g : g ∈ h, g ∉ c}` with negative sign
/// ("c is distinguished from h by *not* expressing any one of these"), or —
/// only when that set is empty — `{g : g ∈ c, g ∉ h}` with positive sign.
/// Both empty (identical samples across classes) yields an unsatisfiable
/// empty negative list.
///
/// This owned form is the wire type and test vocabulary; inside a built
/// [`Bst`] the lists live in a [`ListArena`] and are handed out as
/// borrowed [`ExclusionListRef`] views.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExclusionList {
    /// Polarity of `items`.
    pub sign: Sign,
    /// Items of the list, ascending.
    #[serde(with = "gap_hex")]
    pub items: Vec<ItemId>,
}

/// Compact wire form for the ascending item lists of [`ExclusionList`]:
/// the first id in hex, then the hex gap to each successor,
/// comma-separated — `[3, 10, 11]` → `"3,7,1"`. A trained model is
/// dominated by its exclusion lists (one per (c, h) pair), and encoding
/// each list as one string instead of a JSON array keeps both the file
/// and the serializer's in-memory tree proportional to the *encoded*
/// size — serializing a large model no longer dwarfs the model itself.
mod gap_hex {
    use microarray::ItemId;
    use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
    use std::fmt::Write as _;

    /// Streams the gap-hex encoding of an ascending item slice into an
    /// `io::Write` — the zero-buffer form used by the streaming bundle
    /// serializer ([`crate::Bst::write_json_to`]).
    pub(super) fn write_to<W: std::io::Write>(items: &[ItemId], w: &mut W) -> std::io::Result<()> {
        let mut prev = 0usize;
        for (i, &id) in items.iter().enumerate() {
            if i == 0 {
                write!(w, "{id:x}")?;
            } else {
                debug_assert!(id > prev, "exclusion list not strictly ascending");
                write!(w, ",{:x}", id - prev)?;
            }
            prev = id;
        }
        Ok(())
    }

    pub fn serialize<S: Serializer>(items: &[ItemId], s: S) -> Result<S::Ok, S::Error> {
        let mut out = String::with_capacity(items.len() * 3);
        let mut prev = 0usize;
        for (i, &id) in items.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{id:x}");
            } else {
                debug_assert!(id > prev, "exclusion list not strictly ascending");
                let _ = write!(out, ",{:x}", id - prev);
            }
            prev = id;
        }
        out.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<ItemId>, D::Error> {
        let text = String::deserialize(d)?;
        if text.is_empty() {
            return Ok(Vec::new());
        }
        let mut items = Vec::new();
        let mut prev = 0usize;
        for (i, field) in text.split(',').enumerate() {
            let v = usize::from_str_radix(field, 16).map_err(|_| {
                <D::Error as de::Error>::custom(format!("bad gap-hex field `{field}`"))
            })?;
            let id = if i == 0 {
                v
            } else {
                if v == 0 {
                    return Err(<D::Error as de::Error>::custom(
                        "gap-hex gap of 0: item list must be strictly ascending",
                    ));
                }
                prev.checked_add(v).ok_or_else(|| {
                    <D::Error as de::Error>::custom("gap-hex item id overflows usize")
                })?
            };
            items.push(id);
            prev = id;
        }
        Ok(items)
    }
}

impl ExclusionList {
    /// Converts to a [`ExclusionClause`] naming the excluded out-sample.
    pub fn to_clause(&self, out_sample: SampleId) -> ExclusionClause {
        ExclusionClause { out_sample, sign: self.sign, items: self.items.clone() }
    }

    /// Fraction of literals satisfied by `query` — Algorithm 5 line 4's
    /// `V_e`, computed without materializing a clause (the per-query hot
    /// path evaluates every (c, h) list once).
    pub fn satisfaction(&self, query: &BitSet) -> f64 {
        self.as_ref().satisfaction(query)
    }

    /// This list as a borrowed [`ExclusionListRef`] view.
    pub fn as_ref(&self) -> ExclusionListRef<'_> {
        ExclusionListRef { sign: self.sign, items: &self.items }
    }
}

/// A borrowed view of one exclusion list inside a [`ListArena`].
///
/// Same vocabulary as [`ExclusionList`] (`sign`, ascending `items`) but
/// the items borrow the arena's flat buffer — accessors hand these out
/// without cloning, and the compiled lowering reads straight from them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExclusionListRef<'a> {
    /// Polarity of `items`.
    pub sign: Sign,
    /// Items of the list, ascending.
    pub items: &'a [ItemId],
}

impl ExclusionListRef<'_> {
    /// Converts to a [`ExclusionClause`] naming the excluded out-sample.
    pub fn to_clause(&self, out_sample: SampleId) -> ExclusionClause {
        ExclusionClause { out_sample, sign: self.sign, items: self.items.to_vec() }
    }

    /// Fraction of literals satisfied by `query` — Algorithm 5 line 4's
    /// `V_e`, computed without materializing a clause (the per-query hot
    /// path evaluates every (c, h) list once).
    pub fn satisfaction(&self, query: &BitSet) -> f64 {
        if self.items.is_empty() {
            return 0.0; // degenerate duplicate pair: unsatisfiable
        }
        let sat = match self.sign {
            Sign::Pos => self.items.iter().filter(|&&g| query.contains(g)).count(),
            Sign::Neg => self.items.iter().filter(|&&g| !query.contains(g)).count(),
        };
        sat as f64 / self.items.len() as f64
    }

    /// Clones this view into an owned [`ExclusionList`].
    pub fn to_owned(&self) -> ExclusionList {
        ExclusionList { sign: self.sign, items: self.items.to_vec() }
    }
}

impl PartialEq<ExclusionList> for ExclusionListRef<'_> {
    fn eq(&self, other: &ExclusionList) -> bool {
        self.sign == other.sign && self.items == other.items.as_slice()
    }
}

impl PartialEq<ExclusionListRef<'_>> for ExclusionList {
    fn eq(&self, other: &ExclusionListRef<'_>) -> bool {
        other == self
    }
}

/// Flat, interned storage for every distinct exclusion list of one BST.
///
/// One items buffer + one `(offset, sign)` entry table + per-column entry
/// ranges replace the old `Vec<Vec<ExclusionList>>` (one heap allocation
/// per surviving list): three allocations total, contiguous iteration for
/// the compiled lowering, and a memory footprint that scales with
/// distinct list content. Entry `e`'s items are
/// `items[offsets[e]..offsets[e + 1]]`; column `c` owns entries
/// `col_offsets[c]..col_offsets[c + 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ListArena {
    /// Concatenated items of every distinct list (ascending per list).
    items: Vec<ItemId>,
    /// Cumulative item offsets, one per entry plus a final sentinel.
    offsets: Vec<usize>,
    /// Sign of each entry.
    signs: Vec<Sign>,
    /// Entry ranges per column (`n_cols + 1` cumulative bounds).
    col_offsets: Vec<u32>,
}

impl ListArena {
    fn new() -> ListArena {
        ListArena { items: Vec::new(), offsets: vec![0], signs: Vec::new(), col_offsets: vec![0] }
    }

    /// Sizes the arena exactly for a known merge, so the big vectors
    /// never carry doubling slack.
    fn reserve_exact(&mut self, total_items: usize, total_entries: usize, n_cols: usize) {
        self.items.reserve_exact(total_items);
        self.offsets.reserve_exact(total_entries);
        self.signs.reserve_exact(total_entries);
        self.col_offsets.reserve_exact(n_cols);
    }

    /// Appends one column's lists (flat form) to the arena.
    fn push_column(&mut self, items: &[ItemId], offsets: &[usize], signs: &[Sign]) {
        let base = self.items.len();
        self.items.extend_from_slice(items);
        // offsets[0] is always 0; skip it and shift the rest.
        self.offsets.extend(offsets[1..].iter().map(|o| base + o));
        self.signs.extend_from_slice(signs);
        self.col_offsets.push(self.signs.len() as u32);
    }

    /// Rebuilds an arena from per-column owned lists (the wire form).
    pub fn from_columns(cols: &[Vec<ExclusionList>]) -> ListArena {
        let mut arena = ListArena::new();
        for col in cols {
            let start = arena.signs.len();
            for list in col {
                arena.items.extend_from_slice(&list.items);
                arena.offsets.push(arena.items.len());
                arena.signs.push(list.sign);
            }
            debug_assert_eq!(start + col.len(), arena.signs.len());
            arena.col_offsets.push(arena.signs.len() as u32);
        }
        arena
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.col_offsets.len() - 1
    }

    /// Total distinct lists across all columns.
    pub fn n_lists(&self) -> usize {
        self.signs.len()
    }

    /// Total items across all distinct lists (the memory driver).
    pub fn total_items(&self) -> usize {
        self.items.len()
    }

    /// Bytes held by the arena's buffers (the storage the intern pass is
    /// accountable for; reported as `bstc_bst_arena_bytes_total`).
    pub fn arena_bytes(&self) -> usize {
        self.items.len() * std::mem::size_of::<ItemId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.signs.len() * std::mem::size_of::<Sign>()
            + self.col_offsets.len() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn entry(&self, e: usize) -> ExclusionListRef<'_> {
        ExclusionListRef {
            sign: self.signs[e],
            items: &self.items[self.offsets[e]..self.offsets[e + 1]],
        }
    }

    /// The `u`-th distinct list of column `c`.
    #[inline]
    pub fn list(&self, c: usize, u: usize) -> ExclusionListRef<'_> {
        let base = self.col_offsets[c] as usize;
        debug_assert!(
            base + u < self.col_offsets[c + 1] as usize,
            "list index out of column range"
        );
        self.entry(base + u)
    }

    /// The distinct lists of column `c` as an indexable, iterable view.
    pub fn col(&self, c: usize) -> ColumnLists<'_> {
        ColumnLists { arena: self, start: self.col_offsets[c], end: self.col_offsets[c + 1] }
    }
}

/// The distinct exclusion lists of one BST column, borrowed from the
/// arena. Supports `len`, indexed [`ColumnLists::get`], and iteration.
#[derive(Clone, Copy)]
pub struct ColumnLists<'a> {
    arena: &'a ListArena,
    start: u32,
    end: u32,
}

impl<'a> ColumnLists<'a> {
    /// Number of distinct lists in the column.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True if the column has no lists (no out-of-class samples).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The `u`-th distinct list.
    pub fn get(&self, u: usize) -> ExclusionListRef<'a> {
        debug_assert!(u < self.len());
        self.arena.entry(self.start as usize + u)
    }

    /// Iterates the column's lists in intern (first-seen) order.
    pub fn iter(&self) -> ColumnIter<'a> {
        ColumnIter { arena: self.arena, cur: self.start, end: self.end }
    }
}

impl<'a> IntoIterator for ColumnLists<'a> {
    type Item = ExclusionListRef<'a>;
    type IntoIter = ColumnIter<'a>;
    fn into_iter(self) -> ColumnIter<'a> {
        self.iter()
    }
}

/// Iterator over one column's distinct lists.
pub struct ColumnIter<'a> {
    arena: &'a ListArena,
    cur: u32,
    end: u32,
}

impl<'a> Iterator for ColumnIter<'a> {
    type Item = ExclusionListRef<'a>;
    fn next(&mut self) -> Option<ExclusionListRef<'a>> {
        if self.cur >= self.end {
            return None;
        }
        let e = self.arena.entry(self.cur as usize);
        self.cur += 1;
        Some(e)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.cur) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ColumnIter<'_> {}

/// Serde bridge keeping the arena bit-compatible with the historical
/// `Vec<Vec<ExclusionList>>` wire shape (bundle FORMAT_VERSION 2): the
/// arena serializes as per-column sequences of `{sign, items}` maps with
/// gap-hex item strings, exactly what the derive used to emit, and
/// deserializes from the same shape. (The tree-based serializer still
/// materializes owned lists on this path; the streaming serializer —
/// [`Bst::write_json_to`] — writes the same bytes straight from the
/// arena.)
mod arena_serde {
    use super::{ExclusionList, ListArena};
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(a: &ListArena, s: S) -> Result<S::Ok, S::Error> {
        let cols: Vec<Vec<ExclusionList>> =
            (0..a.n_cols()).map(|c| a.col(c).iter().map(|l| l.to_owned()).collect()).collect();
        cols.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<ListArena, D::Error> {
        let cols: Vec<Vec<ExclusionList>> = Deserialize::deserialize(d)?;
        Ok(ListArena::from_columns(&cols))
    }
}

/// Structure statistics of a [`Bst`] (see [`Bst::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BstStats {
    /// Total (class-sample, out-sample) pairs, `|C_i|·(|S|−|C_i|)`.
    pub pairs: usize,
    /// Distinct exclusion lists stored after per-column deduplication.
    pub unique_lists: usize,
    /// Total items across the distinct lists (the memory driver).
    pub list_items: usize,
    /// Items expressed by no out-of-class sample (all-● rows).
    pub black_dot_rows: usize,
    /// Pairs with an unsatisfiable empty list (cross-class duplicates).
    pub degenerate_pairs: usize,
    /// Bytes held by the interned list arena (items + entry tables).
    #[serde(default)]
    pub arena_bytes: usize,
}

/// A view of one BST cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell<'a> {
    /// The sample does not express the item.
    Empty,
    /// The item is expressed only inside the class (● in Figure 1).
    BlackDot,
    /// Exclusion lists, one per out-sample expressing the item; each entry
    /// is `(local out-sample index, list)`.
    Lists(Vec<(usize, ExclusionListRef<'a>)>),
}

/// Byte budget for one block of out-sample bitsets during construction —
/// the PR 7 L2-residency idiom: the pair sweep walks out-samples in
/// blocks this large so a block stays cache-hot while every column of a
/// worker's chunk probes its intern table against it.
const BST_BLOCK_BYTES: usize = 1 << 20;

/// Splits the out-samples into contiguous blocks whose bitset bytes sum
/// to at most [`BST_BLOCK_BYTES`] (always at least one sample per block).
fn out_sample_blocks(out_expr_sets: &[BitSet]) -> Vec<std::ops::Range<usize>> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut bytes = 0usize;
    for (h, set) in out_expr_sets.iter().enumerate() {
        let b = set.words().len() * 8;
        if h > start && bytes + b > BST_BLOCK_BYTES {
            blocks.push(start..h);
            start = h;
            bytes = 0;
        }
        bytes += b;
    }
    if start < out_expr_sets.len() {
        blocks.push(start..out_expr_sets.len());
    }
    blocks
}

/// FNV-1a over the live (non-zero) words of a difference bitset, with the
/// word index, the element count, and the sign folded in — the
/// materialize-free intern key: hashing happens on the packed words, so
/// no item vector exists unless the list turns out to be first-seen.
fn hash_diff(diff: &BitSet, len: usize, sign: Sign) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (i, &w) in diff.words().iter().enumerate() {
        if w != 0 {
            h ^= i as u64;
            h = h.wrapping_mul(PRIME);
            h ^= w;
            h = h.wrapping_mul(PRIME);
        }
    }
    h ^= len as u64;
    h = h.wrapping_mul(PRIME);
    h ^= match sign {
        Sign::Neg => 1,
        Sign::Pos => 2,
    };
    h.wrapping_mul(PRIME)
}

/// Per-column intern state during construction: the column's slice of the
/// arena in flat form, plus the hash → entry probe table.
struct ColBuilder {
    items: Vec<ItemId>,
    offsets: Vec<usize>,
    signs: Vec<Sign>,
    /// Intern table: difference hash → candidate entry indices.
    table: HashMap<u64, Vec<u32>>,
    idx_row: Vec<u32>,
    /// Reused difference buffer (one per column, not one per pair).
    diff: BitSet,
}

impl ColBuilder {
    fn new(n_items: usize, n_out: usize) -> ColBuilder {
        ColBuilder {
            items: Vec::new(),
            offsets: vec![0],
            signs: Vec::new(),
            table: HashMap::new(),
            idx_row: Vec::with_capacity(n_out),
            diff: BitSet::new(n_items),
        }
    }

    /// Frees construction-only state (the probe table, the diff buffer)
    /// and trims the growth slack off the column's vectors, so a sealed
    /// column holds only its surviving lists while it queues for the
    /// merge. At sample scale the slack is hundreds of megabytes.
    fn seal(&mut self) {
        self.table = HashMap::new();
        self.diff = BitSet::new(0);
        self.items.shrink_to_fit();
        self.offsets.shrink_to_fit();
        self.signs.shrink_to_fit();
        self.idx_row.shrink_to_fit();
    }

    /// True if entry `e` holds exactly the current `diff` contents.
    /// Lengths are compared first, then stored items are membership-tested
    /// against the difference bitset — equal length + subset ⇒ equal set,
    /// so the test never materializes the difference.
    fn entry_matches(&self, e: usize, sign: Sign, len: usize) -> bool {
        if self.signs[e] != sign {
            return false;
        }
        let range = self.offsets[e]..self.offsets[e + 1];
        range.len() == len && self.items[range].iter().all(|&g| self.diff.contains(g))
    }

    /// Computes the (c, h) canonical list into the difference buffer and
    /// interns it: probe by in-place hash, materialize only on first
    /// sight, record the entry index for the pair.
    fn intern_pair(&mut self, c_set: &BitSet, h_set: &BitSet) {
        self.diff.assign_difference(h_set, c_set); // g ∈ h, g ∉ c
        let sign = if !self.diff.is_empty() {
            Sign::Neg
        } else {
            // The positive list may itself be empty (identical samples):
            // keep the unsatisfiable empty list and let validation warn.
            self.diff.assign_difference(c_set, h_set); // g ∈ c, g ∉ h
            Sign::Pos
        };
        let len = self.diff.len();
        let hash = hash_diff(&self.diff, len, sign);
        let found = self.table.get(&hash).and_then(|cands| {
            cands.iter().copied().find(|&e| self.entry_matches(e as usize, sign, len))
        });
        let idx = match found {
            Some(e) => e,
            None => {
                let e = self.signs.len() as u32;
                self.items.extend(self.diff.iter());
                self.offsets.push(self.items.len());
                self.signs.push(sign);
                self.table.entry(hash).or_default().push(e);
                e
            }
        };
        self.idx_row.push(idx);
    }
}

/// The interned, blocked construction core shared by every class build:
/// columns fan out across cores in contiguous chunks; within a chunk the
/// out-samples stream in cache-sized blocks (block-outer, columns-inner),
/// so one block's bitsets stay hot while every column interns against it.
/// Per column, pairs are still visited in ascending `h` order, so entry
/// numbering (first-seen) is identical to the sequential legacy builder.
fn build_interned(
    class_expr: &[BitSet],
    out_expr_sets: &[BitSet],
    n_items: usize,
) -> (ListArena, Vec<Vec<u32>>) {
    let n_cols = class_expr.len();
    let blocks = out_sample_blocks(out_expr_sets);
    let workers =
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).clamp(1, n_cols.max(1));
    let chunk = n_cols.div_ceil(workers);
    let ranges: Vec<std::ops::Range<usize>> = (0..workers)
        .map(|w| (w * chunk)..((w + 1) * chunk).min(n_cols))
        .filter(|r| !r.is_empty())
        .collect();
    let built: Vec<Vec<ColBuilder>> = ranges
        .par_iter()
        .map(|range| {
            let mut cols: Vec<ColBuilder> =
                range.clone().map(|_| ColBuilder::new(n_items, out_expr_sets.len())).collect();
            for block in &blocks {
                for (ci, c) in range.clone().enumerate() {
                    let c_set = &class_expr[c];
                    let col = &mut cols[ci];
                    for h in block.clone() {
                        col.intern_pair(c_set, &out_expr_sets[h]);
                    }
                }
            }
            for col in &mut cols {
                col.seal();
            }
            cols
        })
        .collect();

    let mut arena = ListArena::new();
    arena.reserve_exact(
        built.iter().flatten().map(|c| c.items.len()).sum(),
        built.iter().flatten().map(|c| c.signs.len()).sum(),
        n_cols,
    );
    let mut excl_idx = Vec::with_capacity(n_cols);
    // Columns are consumed (and their buffers freed) one at a time, so
    // the merge peaks at one arena plus a single column, not two arenas.
    for col in built.into_iter().flatten() {
        arena.push_column(&col.items, &col.offsets, &col.signs);
        excl_idx.push(col.idx_row);
    }
    (arena, excl_idx)
}

/// A Boolean Structure Table for one class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bst {
    class: ClassId,
    n_items: usize,
    /// Original ids of the class samples (BST columns), ascending.
    class_samples: Vec<SampleId>,
    /// Original ids of the out-of-class samples, ascending.
    out_samples: Vec<SampleId>,
    /// Item sets of the class samples (owned: the BST is self-contained).
    class_expr: Vec<BitSet>,
    /// Item sets of the out-of-class samples.
    out_expr_sets: Vec<BitSet>,
    /// Per class sample `c`: its distinct exclusion lists, interned into
    /// one flat arena. Different out-samples often induce the *same* list
    /// (they miss the same items of `c`); deduplicating them is the §8
    /// "culling" idea in its lossless form — BSTCE evaluates each
    /// distinct list once per query. Serialized in the historical
    /// `Vec<Vec<ExclusionList>>` gap-hex wire shape.
    #[serde(with = "arena_serde")]
    excl_unique: ListArena,
    /// `excl_idx[c][h]` = column-local entry index of the (c, h) list.
    excl_idx: Vec<Vec<u32>>,
    /// `out_expr[g]` = bitset over *local* out-sample indices expressing `g`.
    out_expr: Vec<BitSet>,
}

impl Bst {
    /// Builds the BST for `class` from a training dataset (Algorithm 1).
    ///
    /// Records its wall time as one `bst_build` span per class in
    /// [`obs::global`] (classes build in parallel; spans may overlap),
    /// and adds to the `bstc_bst_pairs_total` /
    /// `bstc_bst_distinct_lists_total` / `bstc_bst_arena_bytes_total`
    /// process counters ([`obs::counters`]).
    ///
    /// # Panics
    /// Panics if `class` is out of range or has no samples.
    pub fn build(data: &BoolDataset, class: ClassId) -> Bst {
        let _stage = obs::Stage::enter("bst_build");
        assert!(class < data.n_classes(), "class {class} out of range");
        let class_samples: Vec<SampleId> = data.class_members(class);
        assert!(!class_samples.is_empty(), "class {class} has no samples");
        let out_samples: Vec<SampleId> =
            (0..data.n_samples()).filter(|&s| data.label(s) != class).collect();
        let n_items = data.n_items();

        let class_expr: Vec<BitSet> =
            class_samples.iter().map(|&s| data.sample(s).clone()).collect();
        let out_expr_sets: Vec<BitSet> =
            out_samples.iter().map(|&s| data.sample(s).clone()).collect();

        // Canonical exclusion list per (c, h) pair — Algorithm 1 lines
        // 9-21 — interned per column without materializing per-pair item
        // vectors. Output (entry order, indices) is identical to the
        // sequential legacy builder; see `build_interned`.
        let (excl_unique, excl_idx) = build_interned(&class_expr, &out_expr_sets, n_items);

        obs::counters()
            .add("bstc_bst_pairs_total", (class_samples.len() * out_samples.len()) as u64);
        obs::counters().add("bstc_bst_distinct_lists_total", excl_unique.n_lists() as u64);
        obs::counters().add("bstc_bst_arena_bytes_total", excl_unique.arena_bytes() as u64);

        // out_expr[g]: which out-samples express item g — Algorithm 1
        // line 6's black-dot test is `out_expr[g].is_empty()`.
        let mut out_expr: Vec<BitSet> =
            (0..n_items).map(|_| BitSet::new(out_expr_sets.len())).collect();
        for (h_local, h_set) in out_expr_sets.iter().enumerate() {
            for g in h_set.iter() {
                out_expr[g].insert(h_local);
            }
        }

        Bst {
            class,
            n_items,
            class_samples,
            out_samples,
            class_expr,
            out_expr_sets,
            excl_unique,
            excl_idx,
            out_expr,
        }
    }

    /// The pre-arena builder, frozen verbatim: materializes one item
    /// vector per (c, h) pair and dedups via a `HashMap` keyed by owned
    /// lists. Kept (hidden) as the reference for the differential
    /// property tests pinning [`Bst::build`] bit-identical to it; do not
    /// use it for real training — its peak memory scales with the pair
    /// count.
    #[doc(hidden)]
    pub fn build_legacy(data: &BoolDataset, class: ClassId) -> Bst {
        assert!(class < data.n_classes(), "class {class} out of range");
        let class_samples: Vec<SampleId> = data.class_members(class);
        assert!(!class_samples.is_empty(), "class {class} has no samples");
        let out_samples: Vec<SampleId> =
            (0..data.n_samples()).filter(|&s| data.label(s) != class).collect();
        let n_items = data.n_items();

        let class_expr: Vec<BitSet> =
            class_samples.iter().map(|&s| data.sample(s).clone()).collect();
        let out_expr_sets: Vec<BitSet> =
            out_samples.iter().map(|&s| data.sample(s).clone()).collect();

        let columns: Vec<(Vec<ExclusionList>, Vec<u32>)> = class_expr
            .par_iter()
            .map(|c_set| {
                let mut unique: Vec<ExclusionList> = Vec::new();
                let mut seen: HashMap<ExclusionList, u32> = HashMap::new();
                let mut idx_row = Vec::with_capacity(out_expr_sets.len());
                let mut diff = BitSet::new(n_items);
                for h_set in &out_expr_sets {
                    diff.assign_difference(h_set, c_set); // g ∈ h, g ∉ c
                    let list = if !diff.is_empty() {
                        ExclusionList { sign: Sign::Neg, items: diff.to_vec() }
                    } else {
                        diff.assign_difference(c_set, h_set); // g ∈ c, g ∉ h
                        ExclusionList { sign: Sign::Pos, items: diff.to_vec() }
                    };
                    let idx = *seen.entry(list.clone()).or_insert_with(|| {
                        unique.push(list);
                        (unique.len() - 1) as u32
                    });
                    idx_row.push(idx);
                }
                (unique, idx_row)
            })
            .collect();
        let (cols, excl_idx): (Vec<_>, Vec<_>) = columns.into_iter().unzip();
        let excl_unique = ListArena::from_columns(&cols);

        let mut out_expr: Vec<BitSet> =
            (0..n_items).map(|_| BitSet::new(out_expr_sets.len())).collect();
        for (h_local, h_set) in out_expr_sets.iter().enumerate() {
            for g in h_set.iter() {
                out_expr[g].insert(h_local);
            }
        }

        Bst {
            class,
            n_items,
            class_samples,
            out_samples,
            class_expr,
            out_expr_sets,
            excl_unique,
            excl_idx,
            out_expr,
        }
    }

    /// Builds BSTs for every class of the dataset (the classifier's
    /// training step). Total cost `O(|S|²·|G|)` per §3.1.1.
    ///
    /// Classes are built in parallel when there are enough of them to
    /// amortize thread spawns (the rayon shim's sequential fast path keeps
    /// 2-class datasets on the calling thread, where the per-column
    /// parallelism inside [`Bst::build`] already saturates the machine).
    /// Output is identical to [`Bst::build_all_seq`].
    pub fn build_all(data: &BoolDataset) -> Vec<Bst> {
        let classes: Vec<ClassId> = (0..data.n_classes()).collect();
        classes.par_iter().map(|&c| Bst::build(data, c)).collect()
    }

    /// Sequential reference form of [`Bst::build_all`], kept for
    /// differential tests of the parallel fan-out.
    pub fn build_all_seq(data: &BoolDataset) -> Vec<Bst> {
        (0..data.n_classes()).map(|c| Bst::build(data, c)).collect()
    }

    /// The class this table describes.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of items (table rows), `|G|`.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of class samples (table columns), `|C_i|`.
    pub fn n_class_samples(&self) -> usize {
        self.class_samples.len()
    }

    /// Number of out-of-class samples, `|S| − |C_i|`.
    pub fn n_out_samples(&self) -> usize {
        self.out_samples.len()
    }

    /// Original sample id of local class column `c`.
    pub fn class_sample_id(&self, c: usize) -> SampleId {
        self.class_samples[c]
    }

    /// Original sample id of local out-sample index `h`.
    pub fn out_sample_id(&self, h: usize) -> SampleId {
        self.out_samples[h]
    }

    /// Item set of local class column `c`.
    pub fn class_sample_items(&self, c: usize) -> &BitSet {
        &self.class_expr[c]
    }

    /// Item set of local out-sample `h`.
    pub fn out_sample_items(&self, h: usize) -> &BitSet {
        &self.out_expr_sets[h]
    }

    /// True if item `g` is expressed by no out-of-class sample — i.e. every
    /// non-empty (g, ·) cell is a black dot.
    pub fn is_black_dot_row(&self, g: ItemId) -> bool {
        self.out_expr[g].is_empty()
    }

    /// Local out-sample indices expressing item `g`.
    pub fn out_expressing(&self, g: ItemId) -> &BitSet {
        &self.out_expr[g]
    }

    /// The canonical exclusion list of the (c, h) pair (local indices),
    /// borrowed from the arena.
    pub fn exclusion_list(&self, c: usize, h: usize) -> ExclusionListRef<'_> {
        self.excl_unique.list(c, self.excl_idx[c][h] as usize)
    }

    /// The distinct exclusion lists of column `c` (different out-samples
    /// often induce identical lists; BSTCE evaluates each distinct list
    /// once per query).
    pub fn unique_exclusion_lists(&self, c: usize) -> ColumnLists<'_> {
        self.excl_unique.col(c)
    }

    /// Index of the (c, h) pair's list within
    /// [`Bst::unique_exclusion_lists`]`(c)`.
    pub fn exclusion_list_index(&self, c: usize, h: usize) -> usize {
        self.excl_idx[c][h] as usize
    }

    /// The (g, c) cell (local column index).
    pub fn cell(&self, g: ItemId, c: usize) -> Cell<'_> {
        if !self.class_expr[c].contains(g) {
            return Cell::Empty;
        }
        if self.out_expr[g].is_empty() {
            return Cell::BlackDot;
        }
        Cell::Lists(self.out_expr[g].iter().map(|h| (h, self.exclusion_list(c, h))).collect())
    }

    /// The atomic 100 %-confident cell rule of a non-empty (g, c) cell
    /// (§3.2): `g AND (clauses for every h expressing g) ⇒ class`.
    /// Returns `None` for empty cells.
    pub fn cell_rule(&self, g: ItemId, c: usize) -> Option<Bar> {
        match self.cell(g, c) {
            Cell::Empty => None,
            Cell::BlackDot => Some(Bar {
                antecedent: BarAntecedent { car_items: vec![g], disjuncts: vec![vec![]] },
                class: self.class,
            }),
            Cell::Lists(lists) => {
                let clauses: Vec<ExclusionClause> = lists
                    .into_iter()
                    .map(|(h, list)| list.to_clause(self.out_samples[h]))
                    .collect();
                Some(Bar {
                    antecedent: BarAntecedent { car_items: vec![g], disjuncts: vec![clauses] },
                    class: self.class,
                })
            }
        }
    }

    /// Local class-sample indices whose column has a non-empty (g, ·) cell —
    /// the support of the g-row BAR (samples expressing `g`).
    pub fn row_support(&self, g: ItemId) -> BitSet {
        let mut s = BitSet::new(self.class_expr.len());
        for (c, set) in self.class_expr.iter().enumerate() {
            if set.contains(g) {
                s.insert(c);
            }
        }
        s
    }

    /// (c, h) pairs with an unsatisfiable empty exclusion list — i.e. a
    /// class sample identical to an out-of-class sample. Theorem 2 assumes
    /// none exist; classification still works but those pairs can never be
    /// distinguished.
    pub fn degenerate_pairs(&self) -> Vec<(SampleId, SampleId)> {
        let mut v = Vec::new();
        for (c, row) in self.excl_idx.iter().enumerate() {
            for (h, &idx) in row.iter().enumerate() {
                if self.excl_unique.list(c, idx as usize).items.is_empty() {
                    v.push((self.class_samples[c], self.out_samples[h]));
                }
            }
        }
        v
    }

    /// Structure statistics: list counts, dedup ratio, black-dot rows,
    /// arena footprint.
    pub fn stats(&self) -> BstStats {
        let pairs = self.class_samples.len() * self.out_samples.len();
        BstStats {
            pairs,
            unique_lists: self.excl_unique.n_lists(),
            list_items: self.excl_unique.total_items(),
            black_dot_rows: (0..self.n_items).filter(|&g| self.out_expr[g].is_empty()).count(),
            degenerate_pairs: self.degenerate_pairs().len(),
            arena_bytes: self.excl_unique.arena_bytes(),
        }
    }

    /// Streams this BST's canonical compact JSON — byte-identical to
    /// `serde_json::to_string(self)` — into an `io::Write` without
    /// building the serde shim's in-memory `Content` tree. The exclusion
    /// arena's gap-hex strings are written straight from the flat items
    /// buffer; everything else is integers and word arrays, formatted
    /// exactly as the shim's compact writer would.
    pub fn write_json_to<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        fn write_usize_seq<W: io::Write>(w: &mut W, xs: &[usize]) -> io::Result<()> {
            w.write_all(b"[")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{x}")?;
            }
            w.write_all(b"]")
        }
        fn write_bitset<W: io::Write>(w: &mut W, s: &BitSet) -> io::Result<()> {
            write!(w, "{{\"capacity\":{},\"words\":[", s.capacity())?;
            for (i, word) in s.words().iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{word}")?;
            }
            w.write_all(b"]}")
        }
        fn write_bitset_seq<W: io::Write>(w: &mut W, sets: &[BitSet]) -> io::Result<()> {
            w.write_all(b"[")?;
            for (i, s) in sets.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write_bitset(w, s)?;
            }
            w.write_all(b"]")
        }

        write!(w, "{{\"class\":{},\"n_items\":{}", self.class, self.n_items)?;
        w.write_all(b",\"class_samples\":")?;
        write_usize_seq(w, &self.class_samples)?;
        w.write_all(b",\"out_samples\":")?;
        write_usize_seq(w, &self.out_samples)?;
        w.write_all(b",\"class_expr\":")?;
        write_bitset_seq(w, &self.class_expr)?;
        w.write_all(b",\"out_expr_sets\":")?;
        write_bitset_seq(w, &self.out_expr_sets)?;
        w.write_all(b",\"excl_unique\":[")?;
        for c in 0..self.excl_unique.n_cols() {
            if c > 0 {
                w.write_all(b",")?;
            }
            w.write_all(b"[")?;
            for (u, list) in self.excl_unique.col(c).iter().enumerate() {
                if u > 0 {
                    w.write_all(b",")?;
                }
                let sign = match list.sign {
                    Sign::Neg => "Neg",
                    Sign::Pos => "Pos",
                };
                write!(w, "{{\"sign\":\"{sign}\",\"items\":\"")?;
                gap_hex::write_to(list.items, w)?;
                w.write_all(b"\"}")?;
            }
            w.write_all(b"]")?;
        }
        w.write_all(b"],\"excl_idx\":[")?;
        for (c, row) in self.excl_idx.iter().enumerate() {
            if c > 0 {
                w.write_all(b",")?;
            }
            w.write_all(b"[")?;
            for (i, idx) in row.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write!(w, "{idx}")?;
            }
            w.write_all(b"]")?;
        }
        w.write_all(b"],\"out_expr\":")?;
        write_bitset_seq(w, &self.out_expr)?;
        w.write_all(b"}")
    }

    /// Renders the table in the style of Figure 1 (items as rows, class
    /// samples as columns) for small datasets; intended for examples and
    /// debugging.
    pub fn render(&self, data: &BoolDataset) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "BST for class {} ({} items x {} samples)",
            data.class_names()[self.class],
            self.n_items,
            self.class_samples.len()
        );
        for g in 0..self.n_items {
            let _ = write!(s, "{:>8} |", data.item_names()[g]);
            for c in 0..self.class_samples.len() {
                let cell = match self.cell(g, c) {
                    Cell::Empty => String::new(),
                    Cell::BlackDot => "●".to_string(),
                    Cell::Lists(lists) => lists
                        .iter()
                        .map(|(h, list)| {
                            let names = list
                                .items
                                .iter()
                                .map(|&g| {
                                    let n = &data.item_names()[g];
                                    match list.sign {
                                        Sign::Neg => format!("-{n}"),
                                        Sign::Pos => n.clone(),
                                    }
                                })
                                .collect::<Vec<_>>()
                                .join(",");
                            format!("(s{}:{})", self.out_samples[*h] + 1, names)
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                };
                let _ = write!(s, " {cell:<28}|");
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    /// Builds the Cancer BST of Figure 1.
    fn cancer_bst() -> (BoolDataset, Bst) {
        let d = table1();
        let bst = Bst::build(&d, 0);
        (d, bst)
    }

    #[test]
    fn shape_matches_figure_1() {
        let (_, bst) = cancer_bst();
        assert_eq!(bst.class(), 0);
        assert_eq!(bst.n_items(), 6);
        assert_eq!(bst.n_class_samples(), 3);
        assert_eq!(bst.n_out_samples(), 2);
        assert_eq!(bst.class_sample_id(0), 0); // s1
        assert_eq!(bst.out_sample_id(0), 3); // s4
    }

    #[test]
    fn g1_row_is_black_dots() {
        // Figure 1: g1 is expressed by s1, s2 and by no Healthy sample.
        let (_, bst) = cancer_bst();
        assert!(bst.is_black_dot_row(0));
        assert_eq!(bst.cell(0, 0), Cell::BlackDot);
        assert_eq!(bst.cell(0, 1), Cell::BlackDot);
        assert_eq!(bst.cell(0, 2), Cell::Empty); // s3 does not express g1
    }

    #[test]
    fn exclusion_lists_match_figure_1() {
        let (_, bst) = cancer_bst();
        // (s1, s4): Alg 1 falls through to the positive list {g1}.
        assert_eq!(bst.exclusion_list(0, 0), ExclusionList { sign: Sign::Pos, items: vec![0] });
        // (s1, s5): negative list {-g4, -g6}.
        assert_eq!(bst.exclusion_list(0, 1), ExclusionList { sign: Sign::Neg, items: vec![3, 5] });
        // (s2, s4): {-g2, -g5}.
        assert_eq!(bst.exclusion_list(1, 0), ExclusionList { sign: Sign::Neg, items: vec![1, 4] });
        // (s2, s5): {-g4, -g5}.
        assert_eq!(bst.exclusion_list(1, 1), ExclusionList { sign: Sign::Neg, items: vec![3, 4] });
        // (s3, s4): {-g3, -g5}.
        assert_eq!(bst.exclusion_list(2, 0), ExclusionList { sign: Sign::Neg, items: vec![2, 4] });
        // (s3, s5): {-g3, -g5}.
        assert_eq!(bst.exclusion_list(2, 1), ExclusionList { sign: Sign::Neg, items: vec![2, 4] });
    }

    #[test]
    fn g3_s1_cell_matches_figure_1() {
        // The (g3, s1) cell holds both Healthy exclusion lists:
        // (s4: g1) and (s5: -g4, -g6).
        let (_, bst) = cancer_bst();
        match bst.cell(2, 0) {
            Cell::Lists(lists) => {
                assert_eq!(lists.len(), 2);
                assert_eq!(lists[0].0, 0); // s4
                assert_eq!(lists[0].1, ExclusionList { sign: Sign::Pos, items: vec![0] });
                assert_eq!(lists[1].0, 1); // s5
                assert_eq!(lists[1].1, ExclusionList { sign: Sign::Neg, items: vec![3, 5] });
            }
            other => panic!("expected lists, got {other:?}"),
        }
    }

    #[test]
    fn g3_s1_cell_rule_matches_section_3_2() {
        // "g3 expressed AND g1 expressed AND (either g4 or g6 not
        // expressed) ⇒ Cancer" — 100% confident, supported by s1.
        let (d, bst) = cancer_bst();
        let rule = bst.cell_rule(2, 0).unwrap();
        assert_eq!(rule.confidence(&d), Some(1.0));
        let supp = rule.support_set(&d);
        assert!(supp.contains(&0), "supported by s1: {supp:?}");
        // s1 satisfies it; s4/s5 (Healthy) must not.
        assert!(rule.antecedent.eval(d.sample(0)));
        assert!(!rule.antecedent.eval(d.sample(3)));
        assert!(!rule.antecedent.eval(d.sample(4)));
    }

    #[test]
    fn all_cell_rules_are_100_percent_confident() {
        // §3.2: every atomic cell rule has confidence 1 and is supported by
        // its own sample.
        let d = table1();
        for class in 0..2 {
            let bst = Bst::build(&d, class);
            for g in 0..d.n_items() {
                for c in 0..bst.n_class_samples() {
                    if let Some(rule) = bst.cell_rule(g, c) {
                        assert_eq!(
                            rule.confidence(&d),
                            Some(1.0),
                            "cell ({g},{c}) of class {class} not 100% confident"
                        );
                        assert!(
                            rule.antecedent.eval(d.sample(bst.class_sample_id(c))),
                            "cell ({g},{c}) not supported by its own sample"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_support_is_expressing_samples() {
        let (_, bst) = cancer_bst();
        assert_eq!(bst.row_support(0).to_vec(), vec![0, 1]); // g1: s1, s2
        assert_eq!(bst.row_support(1).to_vec(), vec![0, 2]); // g2: s1, s3
        assert_eq!(bst.row_support(2).to_vec(), vec![0, 1]); // g3: s1, s2
        assert_eq!(bst.row_support(3).to_vec(), vec![2]); // g4: s3
        assert_eq!(bst.row_support(5).to_vec(), vec![1, 2]); // g6: s2, s3
    }

    #[test]
    fn healthy_bst_exclusion_lists() {
        let d = table1();
        let bst = Bst::build(&d, 1);
        assert_eq!(bst.n_class_samples(), 2);
        assert_eq!(bst.n_out_samples(), 3);
        // (s4, s1): {g : g ∈ s1, g ∉ s4} = {g1} → negative list.
        assert_eq!(bst.exclusion_list(0, 0), ExclusionList { sign: Sign::Neg, items: vec![0] });
        // (s5, s3): s3 \ s5 = {g2} → negative.
        assert_eq!(bst.exclusion_list(1, 2), ExclusionList { sign: Sign::Neg, items: vec![1] });
        // No black dots in the Healthy BST.
        for g in 0..6 {
            assert!(!bst.is_black_dot_row(g) || bst.row_support(g).is_empty());
        }
    }

    #[test]
    fn identical_lists_are_deduplicated_per_column() {
        // In Figure 1, the (s3, s4) and (s3, s5) pairs both produce
        // (-g3, -g5): column s3 stores one distinct list for two pairs.
        let (_, bst) = cancer_bst();
        assert_eq!(bst.unique_exclusion_lists(2).len(), 1);
        assert_eq!(bst.exclusion_list_index(2, 0), bst.exclusion_list_index(2, 1));
        // Columns s1/s2 have two distinct lists each.
        assert_eq!(bst.unique_exclusion_lists(0).len(), 2);
        assert_eq!(bst.unique_exclusion_lists(1).len(), 2);
        // Accessor equality is unaffected.
        assert_eq!(bst.exclusion_list(2, 0), bst.exclusion_list(2, 1));
    }

    #[test]
    fn degenerate_duplicate_across_classes_is_flagged() {
        let items = vec!["g1".into(), "g2".into()];
        let classes = vec!["A".into(), "B".into()];
        let samples = vec![
            BitSet::from_iter(2, [0, 1]),
            BitSet::from_iter(2, [0, 1]), // identical, different class
            BitSet::from_iter(2, [0]),
        ];
        let d = BoolDataset::new(items, classes, samples, vec![0, 1, 1]).unwrap();
        let bst = Bst::build(&d, 0);
        assert_eq!(bst.degenerate_pairs(), vec![(0, 1)]);
        // The degenerate cell rule exists but is unsatisfiable for any query.
        let rule = bst.cell_rule(0, 0).unwrap();
        assert!(!rule.antecedent.eval(d.sample(0)));
    }

    #[test]
    fn no_degenerate_pairs_in_table1() {
        let (_, bst) = cancer_bst();
        assert!(bst.degenerate_pairs().is_empty());
    }

    #[test]
    fn build_all_covers_every_class() {
        let d = table1();
        let bsts = Bst::build_all(&d);
        assert_eq!(bsts.len(), 2);
        assert_eq!(bsts[0].class(), 0);
        assert_eq!(bsts[1].class(), 1);
    }

    #[test]
    fn stats_reflect_figure_1() {
        let (_, bst) = cancer_bst();
        let st = bst.stats();
        assert_eq!(st.pairs, 6); // 3 class x 2 out samples
        assert_eq!(st.unique_lists, 5); // (s3,*) pair deduped
        assert_eq!(st.black_dot_rows, 1); // g1
        assert_eq!(st.degenerate_pairs, 0);
        assert!(st.list_items >= 5);
        assert!(st.arena_bytes > 0);
        assert!(st.arena_bytes >= st.list_items * std::mem::size_of::<ItemId>());
    }

    #[test]
    fn interned_build_matches_the_frozen_legacy_builder() {
        // Full structural equality — arena contents, entry order, pair
        // indices, out_expr — on both Figure 1 classes.
        let d = table1();
        for class in 0..2 {
            assert_eq!(Bst::build(&d, class), Bst::build_legacy(&d, class), "class {class}");
        }
    }

    #[test]
    fn arena_round_trips_through_from_columns() {
        let (_, bst) = cancer_bst();
        let cols: Vec<Vec<ExclusionList>> = (0..bst.n_class_samples())
            .map(|c| bst.unique_exclusion_lists(c).iter().map(|l| l.to_owned()).collect())
            .collect();
        let rebuilt = ListArena::from_columns(&cols);
        assert_eq!(rebuilt, bst.excl_unique);
        assert_eq!(rebuilt.arena_bytes(), bst.excl_unique.arena_bytes());
    }

    #[test]
    fn render_mentions_black_dot_and_lists() {
        let (d, bst) = cancer_bst();
        let text = bst.render(&d);
        assert!(text.contains('●'));
        assert!(text.contains("(s5:-g4,-g6)"), "{text}");
        assert!(text.contains("(s4:g1)"), "{text}");
    }

    #[test]
    fn exclusion_list_items_use_the_gap_hex_wire_form() {
        let list = ExclusionList { sign: Sign::Neg, items: vec![3, 10, 11, 255] };
        let json = serde_json::to_string(&list).unwrap();
        // [3, 10, 11, 255] → first id 0x3, then gaps 0x7, 0x1, 0xf4.
        assert!(json.contains("\"3,7,1,f4\""), "{json}");
        let back: ExclusionList = serde_json::from_str(&json).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn gap_hex_round_trips_empty_and_single_item_lists() {
        for items in [vec![], vec![0], vec![0, 1], vec![4096]] {
            let list = ExclusionList { sign: Sign::Pos, items };
            let json = serde_json::to_string(&list).unwrap();
            let back: ExclusionList = serde_json::from_str(&json).unwrap();
            assert_eq!(back, list, "{json}");
        }
    }

    #[test]
    fn gap_hex_rejects_malformed_and_non_ascending_input() {
        for bad in ["\"zz\"", "\"3,,1\"", "\"3,0\"", "\"3,-1\""] {
            let json = format!("{{\"sign\":\"Neg\",\"items\":{bad}}}");
            assert!(serde_json::from_str::<ExclusionList>(&json).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn bst_serde_wire_shape_is_the_legacy_nested_list_form() {
        // The arena must serialize exactly as the historical
        // Vec<Vec<ExclusionList>> field did: per-column arrays of
        // {"sign":...,"items":"<gap-hex>"} maps, in intern order.
        let (_, bst) = cancer_bst();
        let json = serde_json::to_string(&bst).unwrap();
        assert!(json.contains("\"excl_unique\":[[{\"sign\":\"Pos\",\"items\":\"0\"}"), "{json}");
        let back: Bst = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bst);
    }

    #[test]
    fn streaming_json_is_byte_identical_to_the_tree_serializer() {
        let d = table1();
        for class in 0..2 {
            let bst = Bst::build(&d, class);
            let mut streamed = Vec::new();
            bst.write_json_to(&mut streamed).unwrap();
            assert_eq!(
                String::from_utf8(streamed).unwrap(),
                serde_json::to_string(&bst).unwrap(),
                "class {class}"
            );
        }
    }

    #[test]
    fn out_sample_blocks_cover_every_sample_in_order() {
        let sets: Vec<BitSet> = (0..7).map(|_| BitSet::new(64)).collect();
        let blocks = out_sample_blocks(&sets);
        let flat: Vec<usize> = blocks.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(flat, (0..7).collect::<Vec<_>>());
        // Huge sets still get at least one sample per block.
        let big: Vec<BitSet> = (0..3).map(|_| BitSet::new(BST_BLOCK_BYTES * 8 * 2)).collect();
        let blocks = out_sample_blocks(&big);
        assert_eq!(blocks.len(), 3);
    }
}
