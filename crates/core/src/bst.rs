//! Boolean Structure Tables (§3.1, Algorithm 1).
//!
//! A BST for class `C_i` is conceptually a `|G| × |C_i|` table whose
//! (g, c) cell is
//!
//! * **empty** when sample `c` does not express item `g`;
//! * a **black dot** when `c` expresses `g` and *no* out-of-class sample
//!   does (the item alone is 100 % class-pure);
//! * otherwise the set of **exclusion lists** `{E(c,h) : h ∉ C_i, g ∈ h}` —
//!   one canonical list per (c, h) pair, shared across all cells of row
//!   `c`'s column, exactly the list Algorithm 1 memoizes via its pointer
//!   array.
//!
//! We therefore materialize only (a) the per-pair exclusion lists and
//! (b) per-item bitsets of out-of-class samples expressing the item; cells
//! are views assembled on demand. This preserves Algorithm 1's
//! `O((|S|−|C_i|)·|G|·|C_i|)` space/time bound with a much smaller
//! constant.

use crate::bar::{Bar, BarAntecedent, ExclusionClause, Sign};
use microarray::{BitSet, BoolDataset, ClassId, ItemId, SampleId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A canonical exclusion list for one (class-sample, out-sample) pair.
///
/// Per Algorithm 1: the list is `{g : g ∈ h, g ∉ c}` with negative sign
/// ("c is distinguished from h by *not* expressing any one of these"), or —
/// only when that set is empty — `{g : g ∈ c, g ∉ h}` with positive sign.
/// Both empty (identical samples across classes) yields an unsatisfiable
/// empty negative list.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExclusionList {
    /// Polarity of `items`.
    pub sign: Sign,
    /// Items of the list, ascending.
    #[serde(with = "gap_hex")]
    pub items: Vec<ItemId>,
}

/// Compact wire form for the ascending item lists of [`ExclusionList`]:
/// the first id in hex, then the hex gap to each successor,
/// comma-separated — `[3, 10, 11]` → `"3,7,1"`. A trained model is
/// dominated by its exclusion lists (one per (c, h) pair), and encoding
/// each list as one string instead of a JSON array keeps both the file
/// and the serializer's in-memory tree proportional to the *encoded*
/// size — serializing a large model no longer dwarfs the model itself.
mod gap_hex {
    use microarray::ItemId;
    use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
    use std::fmt::Write as _;

    pub fn serialize<S: Serializer>(items: &Vec<ItemId>, s: S) -> Result<S::Ok, S::Error> {
        let mut out = String::with_capacity(items.len() * 3);
        let mut prev = 0usize;
        for (i, &id) in items.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{id:x}");
            } else {
                debug_assert!(id > prev, "exclusion list not strictly ascending");
                let _ = write!(out, ",{:x}", id - prev);
            }
            prev = id;
        }
        out.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<ItemId>, D::Error> {
        let text = String::deserialize(d)?;
        if text.is_empty() {
            return Ok(Vec::new());
        }
        let mut items = Vec::new();
        let mut prev = 0usize;
        for (i, field) in text.split(',').enumerate() {
            let v = usize::from_str_radix(field, 16).map_err(|_| {
                <D::Error as de::Error>::custom(format!("bad gap-hex field `{field}`"))
            })?;
            let id = if i == 0 {
                v
            } else {
                if v == 0 {
                    return Err(<D::Error as de::Error>::custom(
                        "gap-hex gap of 0: item list must be strictly ascending",
                    ));
                }
                prev.checked_add(v).ok_or_else(|| {
                    <D::Error as de::Error>::custom("gap-hex item id overflows usize")
                })?
            };
            items.push(id);
            prev = id;
        }
        Ok(items)
    }
}

impl ExclusionList {
    /// Converts to a [`ExclusionClause`] naming the excluded out-sample.
    pub fn to_clause(&self, out_sample: SampleId) -> ExclusionClause {
        ExclusionClause { out_sample, sign: self.sign, items: self.items.clone() }
    }

    /// Fraction of literals satisfied by `query` — Algorithm 5 line 4's
    /// `V_e`, computed without materializing a clause (the per-query hot
    /// path evaluates every (c, h) list once).
    pub fn satisfaction(&self, query: &BitSet) -> f64 {
        if self.items.is_empty() {
            return 0.0; // degenerate duplicate pair: unsatisfiable
        }
        let sat = match self.sign {
            Sign::Pos => self.items.iter().filter(|&&g| query.contains(g)).count(),
            Sign::Neg => self.items.iter().filter(|&&g| !query.contains(g)).count(),
        };
        sat as f64 / self.items.len() as f64
    }
}

/// Structure statistics of a [`Bst`] (see [`Bst::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BstStats {
    /// Total (class-sample, out-sample) pairs, `|C_i|·(|S|−|C_i|)`.
    pub pairs: usize,
    /// Distinct exclusion lists stored after per-column deduplication.
    pub unique_lists: usize,
    /// Total items across the distinct lists (the memory driver).
    pub list_items: usize,
    /// Items expressed by no out-of-class sample (all-● rows).
    pub black_dot_rows: usize,
    /// Pairs with an unsatisfiable empty list (cross-class duplicates).
    pub degenerate_pairs: usize,
}

/// A view of one BST cell.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell<'a> {
    /// The sample does not express the item.
    Empty,
    /// The item is expressed only inside the class (● in Figure 1).
    BlackDot,
    /// Exclusion lists, one per out-sample expressing the item; each entry
    /// is `(local out-sample index, list)`.
    Lists(Vec<(usize, &'a ExclusionList)>),
}

/// A Boolean Structure Table for one class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bst {
    class: ClassId,
    n_items: usize,
    /// Original ids of the class samples (BST columns), ascending.
    class_samples: Vec<SampleId>,
    /// Original ids of the out-of-class samples, ascending.
    out_samples: Vec<SampleId>,
    /// Item sets of the class samples (owned: the BST is self-contained).
    class_expr: Vec<BitSet>,
    /// Item sets of the out-of-class samples.
    out_expr_sets: Vec<BitSet>,
    /// Per class sample `c`: its distinct exclusion lists. Different
    /// out-samples often induce the *same* list (they miss the same items
    /// of `c`); deduplicating them is the §8 "culling" idea in its
    /// lossless form — BSTCE evaluates each distinct list once per query.
    excl_unique: Vec<Vec<ExclusionList>>,
    /// `excl_idx[c][h]` = index into `excl_unique[c]` of the (c, h) list.
    excl_idx: Vec<Vec<u32>>,
    /// `out_expr[g]` = bitset over *local* out-sample indices expressing `g`.
    out_expr: Vec<BitSet>,
}

impl Bst {
    /// Builds the BST for `class` from a training dataset (Algorithm 1).
    ///
    /// Records its wall time as one `bst_build` span per class in
    /// [`obs::global`] (classes build in parallel; spans may overlap).
    ///
    /// # Panics
    /// Panics if `class` is out of range or has no samples.
    pub fn build(data: &BoolDataset, class: ClassId) -> Bst {
        let _stage = obs::Stage::enter("bst_build");
        assert!(class < data.n_classes(), "class {class} out of range");
        let class_samples: Vec<SampleId> = data.class_members(class);
        assert!(!class_samples.is_empty(), "class {class} has no samples");
        let out_samples: Vec<SampleId> =
            (0..data.n_samples()).filter(|&s| data.label(s) != class).collect();
        let n_items = data.n_items();

        let class_expr: Vec<BitSet> =
            class_samples.iter().map(|&s| data.sample(s).clone()).collect();
        let out_expr_sets: Vec<BitSet> =
            out_samples.iter().map(|&s| data.sample(s).clone()).collect();

        // Canonical exclusion list per (c, h) pair — Algorithm 1 lines
        // 9-21 — deduplicated per column: equal lists share one slot.
        // Columns are independent, so the construction fans out across
        // cores; `collect` preserves column order, keeping the output
        // identical to the sequential loop.
        let columns: Vec<(Vec<ExclusionList>, Vec<u32>)> = class_expr
            .par_iter()
            .map(|c_set| {
                let mut unique: Vec<ExclusionList> = Vec::new();
                let mut seen: std::collections::HashMap<ExclusionList, u32> =
                    std::collections::HashMap::new();
                let mut idx_row = Vec::with_capacity(out_expr_sets.len());
                // One reused difference buffer per column instead of a
                // fresh BitSet (sometimes two) per (c, h) pair.
                let mut diff = BitSet::new(n_items);
                for h_set in &out_expr_sets {
                    diff.assign_difference(h_set, c_set); // g ∈ h, g ∉ c
                    let list = if !diff.is_empty() {
                        ExclusionList { sign: Sign::Neg, items: diff.to_vec() }
                    } else {
                        // The positive list may itself be empty (identical
                        // samples): keep the unsatisfiable empty list and
                        // let validation warn.
                        diff.assign_difference(c_set, h_set); // g ∈ c, g ∉ h
                        ExclusionList { sign: Sign::Pos, items: diff.to_vec() }
                    };
                    let idx = *seen.entry(list.clone()).or_insert_with(|| {
                        unique.push(list);
                        (unique.len() - 1) as u32
                    });
                    idx_row.push(idx);
                }
                (unique, idx_row)
            })
            .collect();
        let (excl_unique, excl_idx): (Vec<_>, Vec<_>) = columns.into_iter().unzip();

        // out_expr[g]: which out-samples express item g — Algorithm 1
        // line 6's black-dot test is `out_expr[g].is_empty()`.
        let mut out_expr: Vec<BitSet> =
            (0..n_items).map(|_| BitSet::new(out_expr_sets.len())).collect();
        for (h_local, h_set) in out_expr_sets.iter().enumerate() {
            for g in h_set.iter() {
                out_expr[g].insert(h_local);
            }
        }

        Bst {
            class,
            n_items,
            class_samples,
            out_samples,
            class_expr,
            out_expr_sets,
            excl_unique,
            excl_idx,
            out_expr,
        }
    }

    /// Builds BSTs for every class of the dataset (the classifier's
    /// training step). Total cost `O(|S|²·|G|)` per §3.1.1.
    ///
    /// Classes are built in parallel when there are enough of them to
    /// amortize thread spawns (the rayon shim's sequential fast path keeps
    /// 2-class datasets on the calling thread, where the per-column
    /// parallelism inside [`Bst::build`] already saturates the machine).
    /// Output is identical to [`Bst::build_all_seq`].
    pub fn build_all(data: &BoolDataset) -> Vec<Bst> {
        let classes: Vec<ClassId> = (0..data.n_classes()).collect();
        classes.par_iter().map(|&c| Bst::build(data, c)).collect()
    }

    /// Sequential reference form of [`Bst::build_all`], kept for
    /// differential tests of the parallel fan-out.
    pub fn build_all_seq(data: &BoolDataset) -> Vec<Bst> {
        (0..data.n_classes()).map(|c| Bst::build(data, c)).collect()
    }

    /// The class this table describes.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of items (table rows), `|G|`.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of class samples (table columns), `|C_i|`.
    pub fn n_class_samples(&self) -> usize {
        self.class_samples.len()
    }

    /// Number of out-of-class samples, `|S| − |C_i|`.
    pub fn n_out_samples(&self) -> usize {
        self.out_samples.len()
    }

    /// Original sample id of local class column `c`.
    pub fn class_sample_id(&self, c: usize) -> SampleId {
        self.class_samples[c]
    }

    /// Original sample id of local out-sample index `h`.
    pub fn out_sample_id(&self, h: usize) -> SampleId {
        self.out_samples[h]
    }

    /// Item set of local class column `c`.
    pub fn class_sample_items(&self, c: usize) -> &BitSet {
        &self.class_expr[c]
    }

    /// Item set of local out-sample `h`.
    pub fn out_sample_items(&self, h: usize) -> &BitSet {
        &self.out_expr_sets[h]
    }

    /// True if item `g` is expressed by no out-of-class sample — i.e. every
    /// non-empty (g, ·) cell is a black dot.
    pub fn is_black_dot_row(&self, g: ItemId) -> bool {
        self.out_expr[g].is_empty()
    }

    /// Local out-sample indices expressing item `g`.
    pub fn out_expressing(&self, g: ItemId) -> &BitSet {
        &self.out_expr[g]
    }

    /// The canonical exclusion list of the (c, h) pair (local indices).
    pub fn exclusion_list(&self, c: usize, h: usize) -> &ExclusionList {
        &self.excl_unique[c][self.excl_idx[c][h] as usize]
    }

    /// The distinct exclusion lists of column `c` (different out-samples
    /// often induce identical lists; BSTCE evaluates each distinct list
    /// once per query).
    pub fn unique_exclusion_lists(&self, c: usize) -> &[ExclusionList] {
        &self.excl_unique[c]
    }

    /// Index of the (c, h) pair's list within
    /// [`Bst::unique_exclusion_lists`]`(c)`.
    pub fn exclusion_list_index(&self, c: usize, h: usize) -> usize {
        self.excl_idx[c][h] as usize
    }

    /// The (g, c) cell (local column index).
    pub fn cell(&self, g: ItemId, c: usize) -> Cell<'_> {
        if !self.class_expr[c].contains(g) {
            return Cell::Empty;
        }
        if self.out_expr[g].is_empty() {
            return Cell::BlackDot;
        }
        Cell::Lists(self.out_expr[g].iter().map(|h| (h, self.exclusion_list(c, h))).collect())
    }

    /// The atomic 100 %-confident cell rule of a non-empty (g, c) cell
    /// (§3.2): `g AND (clauses for every h expressing g) ⇒ class`.
    /// Returns `None` for empty cells.
    pub fn cell_rule(&self, g: ItemId, c: usize) -> Option<Bar> {
        match self.cell(g, c) {
            Cell::Empty => None,
            Cell::BlackDot => Some(Bar {
                antecedent: BarAntecedent { car_items: vec![g], disjuncts: vec![vec![]] },
                class: self.class,
            }),
            Cell::Lists(lists) => {
                let clauses: Vec<ExclusionClause> = lists
                    .into_iter()
                    .map(|(h, list)| list.to_clause(self.out_samples[h]))
                    .collect();
                Some(Bar {
                    antecedent: BarAntecedent { car_items: vec![g], disjuncts: vec![clauses] },
                    class: self.class,
                })
            }
        }
    }

    /// Local class-sample indices whose column has a non-empty (g, ·) cell —
    /// the support of the g-row BAR (samples expressing `g`).
    pub fn row_support(&self, g: ItemId) -> BitSet {
        let mut s = BitSet::new(self.class_expr.len());
        for (c, set) in self.class_expr.iter().enumerate() {
            if set.contains(g) {
                s.insert(c);
            }
        }
        s
    }

    /// (c, h) pairs with an unsatisfiable empty exclusion list — i.e. a
    /// class sample identical to an out-of-class sample. Theorem 2 assumes
    /// none exist; classification still works but those pairs can never be
    /// distinguished.
    pub fn degenerate_pairs(&self) -> Vec<(SampleId, SampleId)> {
        let mut v = Vec::new();
        for (c, row) in self.excl_idx.iter().enumerate() {
            for (h, &idx) in row.iter().enumerate() {
                if self.excl_unique[c][idx as usize].items.is_empty() {
                    v.push((self.class_samples[c], self.out_samples[h]));
                }
            }
        }
        v
    }

    /// Structure statistics: list counts, dedup ratio, black-dot rows.
    pub fn stats(&self) -> BstStats {
        let pairs = self.class_samples.len() * self.out_samples.len();
        let unique: usize = self.excl_unique.iter().map(Vec::len).sum();
        let list_items: usize = self.excl_unique.iter().flatten().map(|l| l.items.len()).sum();
        BstStats {
            pairs,
            unique_lists: unique,
            list_items,
            black_dot_rows: (0..self.n_items).filter(|&g| self.out_expr[g].is_empty()).count(),
            degenerate_pairs: self.degenerate_pairs().len(),
        }
    }

    /// Renders the table in the style of Figure 1 (items as rows, class
    /// samples as columns) for small datasets; intended for examples and
    /// debugging.
    pub fn render(&self, data: &BoolDataset) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "BST for class {} ({} items x {} samples)",
            data.class_names()[self.class],
            self.n_items,
            self.class_samples.len()
        );
        for g in 0..self.n_items {
            let _ = write!(s, "{:>8} |", data.item_names()[g]);
            for c in 0..self.class_samples.len() {
                let cell = match self.cell(g, c) {
                    Cell::Empty => String::new(),
                    Cell::BlackDot => "●".to_string(),
                    Cell::Lists(lists) => lists
                        .iter()
                        .map(|(h, list)| {
                            let names = list
                                .items
                                .iter()
                                .map(|&g| {
                                    let n = &data.item_names()[g];
                                    match list.sign {
                                        Sign::Neg => format!("-{n}"),
                                        Sign::Pos => n.clone(),
                                    }
                                })
                                .collect::<Vec<_>>()
                                .join(",");
                            format!("(s{}:{})", self.out_samples[*h] + 1, names)
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                };
                let _ = write!(s, " {cell:<28}|");
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    /// Builds the Cancer BST of Figure 1.
    fn cancer_bst() -> (BoolDataset, Bst) {
        let d = table1();
        let bst = Bst::build(&d, 0);
        (d, bst)
    }

    #[test]
    fn shape_matches_figure_1() {
        let (_, bst) = cancer_bst();
        assert_eq!(bst.class(), 0);
        assert_eq!(bst.n_items(), 6);
        assert_eq!(bst.n_class_samples(), 3);
        assert_eq!(bst.n_out_samples(), 2);
        assert_eq!(bst.class_sample_id(0), 0); // s1
        assert_eq!(bst.out_sample_id(0), 3); // s4
    }

    #[test]
    fn g1_row_is_black_dots() {
        // Figure 1: g1 is expressed by s1, s2 and by no Healthy sample.
        let (_, bst) = cancer_bst();
        assert!(bst.is_black_dot_row(0));
        assert_eq!(bst.cell(0, 0), Cell::BlackDot);
        assert_eq!(bst.cell(0, 1), Cell::BlackDot);
        assert_eq!(bst.cell(0, 2), Cell::Empty); // s3 does not express g1
    }

    #[test]
    fn exclusion_lists_match_figure_1() {
        let (_, bst) = cancer_bst();
        // (s1, s4): Alg 1 falls through to the positive list {g1}.
        assert_eq!(bst.exclusion_list(0, 0), &ExclusionList { sign: Sign::Pos, items: vec![0] });
        // (s1, s5): negative list {-g4, -g6}.
        assert_eq!(bst.exclusion_list(0, 1), &ExclusionList { sign: Sign::Neg, items: vec![3, 5] });
        // (s2, s4): {-g2, -g5}.
        assert_eq!(bst.exclusion_list(1, 0), &ExclusionList { sign: Sign::Neg, items: vec![1, 4] });
        // (s2, s5): {-g4, -g5}.
        assert_eq!(bst.exclusion_list(1, 1), &ExclusionList { sign: Sign::Neg, items: vec![3, 4] });
        // (s3, s4): {-g3, -g5}.
        assert_eq!(bst.exclusion_list(2, 0), &ExclusionList { sign: Sign::Neg, items: vec![2, 4] });
        // (s3, s5): {-g3, -g5}.
        assert_eq!(bst.exclusion_list(2, 1), &ExclusionList { sign: Sign::Neg, items: vec![2, 4] });
    }

    #[test]
    fn g3_s1_cell_matches_figure_1() {
        // The (g3, s1) cell holds both Healthy exclusion lists:
        // (s4: g1) and (s5: -g4, -g6).
        let (_, bst) = cancer_bst();
        match bst.cell(2, 0) {
            Cell::Lists(lists) => {
                assert_eq!(lists.len(), 2);
                assert_eq!(lists[0].0, 0); // s4
                assert_eq!(lists[0].1.sign, Sign::Pos);
                assert_eq!(lists[0].1.items, vec![0]);
                assert_eq!(lists[1].0, 1); // s5
                assert_eq!(lists[1].1.sign, Sign::Neg);
                assert_eq!(lists[1].1.items, vec![3, 5]);
            }
            other => panic!("expected lists, got {other:?}"),
        }
    }

    #[test]
    fn g3_s1_cell_rule_matches_section_3_2() {
        // "g3 expressed AND g1 expressed AND (either g4 or g6 not
        // expressed) ⇒ Cancer" — 100% confident, supported by s1.
        let (d, bst) = cancer_bst();
        let rule = bst.cell_rule(2, 0).unwrap();
        assert_eq!(rule.confidence(&d), Some(1.0));
        let supp = rule.support_set(&d);
        assert!(supp.contains(&0), "supported by s1: {supp:?}");
        // s1 satisfies it; s4/s5 (Healthy) must not.
        assert!(rule.antecedent.eval(d.sample(0)));
        assert!(!rule.antecedent.eval(d.sample(3)));
        assert!(!rule.antecedent.eval(d.sample(4)));
    }

    #[test]
    fn all_cell_rules_are_100_percent_confident() {
        // §3.2: every atomic cell rule has confidence 1 and is supported by
        // its own sample.
        let d = table1();
        for class in 0..2 {
            let bst = Bst::build(&d, class);
            for g in 0..d.n_items() {
                for c in 0..bst.n_class_samples() {
                    if let Some(rule) = bst.cell_rule(g, c) {
                        assert_eq!(
                            rule.confidence(&d),
                            Some(1.0),
                            "cell ({g},{c}) of class {class} not 100% confident"
                        );
                        assert!(
                            rule.antecedent.eval(d.sample(bst.class_sample_id(c))),
                            "cell ({g},{c}) not supported by its own sample"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_support_is_expressing_samples() {
        let (_, bst) = cancer_bst();
        assert_eq!(bst.row_support(0).to_vec(), vec![0, 1]); // g1: s1, s2
        assert_eq!(bst.row_support(1).to_vec(), vec![0, 2]); // g2: s1, s3
        assert_eq!(bst.row_support(2).to_vec(), vec![0, 1]); // g3: s1, s2
        assert_eq!(bst.row_support(3).to_vec(), vec![2]); // g4: s3
        assert_eq!(bst.row_support(5).to_vec(), vec![1, 2]); // g6: s2, s3
    }

    #[test]
    fn healthy_bst_exclusion_lists() {
        let d = table1();
        let bst = Bst::build(&d, 1);
        assert_eq!(bst.n_class_samples(), 2);
        assert_eq!(bst.n_out_samples(), 3);
        // (s4, s1): {g : g ∈ s1, g ∉ s4} = {g1} → negative list.
        assert_eq!(bst.exclusion_list(0, 0), &ExclusionList { sign: Sign::Neg, items: vec![0] });
        // (s5, s3): s3 \ s5 = {g2} → negative.
        assert_eq!(bst.exclusion_list(1, 2), &ExclusionList { sign: Sign::Neg, items: vec![1] });
        // No black dots in the Healthy BST.
        for g in 0..6 {
            assert!(!bst.is_black_dot_row(g) || bst.row_support(g).is_empty());
        }
    }

    #[test]
    fn identical_lists_are_deduplicated_per_column() {
        // In Figure 1, the (s3, s4) and (s3, s5) pairs both produce
        // (-g3, -g5): column s3 stores one distinct list for two pairs.
        let (_, bst) = cancer_bst();
        assert_eq!(bst.unique_exclusion_lists(2).len(), 1);
        assert_eq!(bst.exclusion_list_index(2, 0), bst.exclusion_list_index(2, 1));
        // Columns s1/s2 have two distinct lists each.
        assert_eq!(bst.unique_exclusion_lists(0).len(), 2);
        assert_eq!(bst.unique_exclusion_lists(1).len(), 2);
        // Accessor equality is unaffected.
        assert_eq!(bst.exclusion_list(2, 0), bst.exclusion_list(2, 1));
    }

    #[test]
    fn degenerate_duplicate_across_classes_is_flagged() {
        let items = vec!["g1".into(), "g2".into()];
        let classes = vec!["A".into(), "B".into()];
        let samples = vec![
            BitSet::from_iter(2, [0, 1]),
            BitSet::from_iter(2, [0, 1]), // identical, different class
            BitSet::from_iter(2, [0]),
        ];
        let d = BoolDataset::new(items, classes, samples, vec![0, 1, 1]).unwrap();
        let bst = Bst::build(&d, 0);
        assert_eq!(bst.degenerate_pairs(), vec![(0, 1)]);
        // The degenerate cell rule exists but is unsatisfiable for any query.
        let rule = bst.cell_rule(0, 0).unwrap();
        assert!(!rule.antecedent.eval(d.sample(0)));
    }

    #[test]
    fn no_degenerate_pairs_in_table1() {
        let (_, bst) = cancer_bst();
        assert!(bst.degenerate_pairs().is_empty());
    }

    #[test]
    fn build_all_covers_every_class() {
        let d = table1();
        let bsts = Bst::build_all(&d);
        assert_eq!(bsts.len(), 2);
        assert_eq!(bsts[0].class(), 0);
        assert_eq!(bsts[1].class(), 1);
    }

    #[test]
    fn stats_reflect_figure_1() {
        let (_, bst) = cancer_bst();
        let st = bst.stats();
        assert_eq!(st.pairs, 6); // 3 class x 2 out samples
        assert_eq!(st.unique_lists, 5); // (s3,*) pair deduped
        assert_eq!(st.black_dot_rows, 1); // g1
        assert_eq!(st.degenerate_pairs, 0);
        assert!(st.list_items >= 5);
    }

    #[test]
    fn render_mentions_black_dot_and_lists() {
        let (d, bst) = cancer_bst();
        let text = bst.render(&d);
        assert!(text.contains('●'));
        assert!(text.contains("(s5:-g4,-g6)"), "{text}");
        assert!(text.contains("(s4:g1)"), "{text}");
    }

    #[test]
    fn exclusion_list_items_use_the_gap_hex_wire_form() {
        let list = ExclusionList { sign: Sign::Neg, items: vec![3, 10, 11, 255] };
        let json = serde_json::to_string(&list).unwrap();
        // [3, 10, 11, 255] → first id 0x3, then gaps 0x7, 0x1, 0xf4.
        assert!(json.contains("\"3,7,1,f4\""), "{json}");
        let back: ExclusionList = serde_json::from_str(&json).unwrap();
        assert_eq!(back, list);
    }

    #[test]
    fn gap_hex_round_trips_empty_and_single_item_lists() {
        for items in [vec![], vec![0], vec![0, 1], vec![4096]] {
            let list = ExclusionList { sign: Sign::Pos, items };
            let json = serde_json::to_string(&list).unwrap();
            let back: ExclusionList = serde_json::from_str(&json).unwrap();
            assert_eq!(back, list, "{json}");
        }
    }

    #[test]
    fn gap_hex_rejects_malformed_and_non_ascending_input() {
        for bad in ["\"zz\"", "\"3,,1\"", "\"3,0\"", "\"3,-1\""] {
            let json = format!("{{\"sign\":\"Neg\",\"items\":{bad}}}");
            assert!(
                serde_json::from_str::<ExclusionList>(&json).is_err(),
                "accepted {bad}"
            );
        }
    }
}
