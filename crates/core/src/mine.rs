//! (MC)²BAR mining (§4.1, Algorithms 3 and 4).
//!
//! A BAR is *maximally complex* when no item can be conjoined to its CAR
//! portion without shrinking its class support set. The maximally complex
//! 100 %-confident BAR for a supportable sample set `S` has CAR portion
//! `∩_{c∈S} items(c)` — the closed item set of `S` — plus exclusion
//! clauses only for the out-of-class samples expressing that whole closed
//! set (Theorem 1 / Theorem 2's construction).
//!
//! Algorithm 3 enumerates supportable sets best-first by size: row supports
//! seed the candidate pool, each emitted batch spawns new candidates by
//! intersection, and every emitted set gets its (MC)²BAR. Because row
//! supports are closed and closedness is preserved under intersection,
//! every candidate's rule has support exactly the candidate set.

use crate::bar::{Bar, BarAntecedent, ExclusionClause};
use crate::bst::Bst;
use microarray::{BitSet, ItemId, SampleId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A maximally complex, 100 %-confident boolean association rule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mc2Bar {
    /// Consequent class.
    pub class: microarray::ClassId,
    /// The closed CAR portion: every item expressed by all supporting
    /// samples (ascending).
    pub car_items: Vec<ItemId>,
    /// Supporting class samples, as *local* BST column indices.
    pub support: BitSet,
    /// Out-of-class samples (local indices) expressing the whole CAR
    /// portion — the samples the exclusion clauses must actively exclude.
    pub excluded: Vec<usize>,
}

impl Mc2Bar {
    /// Support size `|supp|`.
    pub fn support_len(&self) -> usize {
        self.support.len()
    }

    /// Supporting samples as original dataset ids.
    pub fn support_sample_ids(&self, bst: &Bst) -> Vec<SampleId> {
        self.support.iter().map(|c| bst.class_sample_id(c)).collect()
    }

    /// Confidence of the *CAR portion alone* (Theorem 2):
    /// `|supp| / (|supp| + #excluded)`.
    pub fn car_confidence(&self) -> f64 {
        let s = self.support.len() as f64;
        s / (s + self.excluded.len() as f64)
    }

    /// Materializes the full 100 %-confident BAR: for each supporting
    /// sample `c`, the conjunction of the (c, h) exclusion clauses over the
    /// actively excluded `h`; disjoined over the support (Theorem 2's
    /// construction). Out-samples missing some CAR item need no clause —
    /// the CAR portion already excludes them.
    pub fn to_bar(&self, bst: &Bst) -> Bar {
        let disjuncts: Vec<Vec<ExclusionClause>> = self
            .support
            .iter()
            .map(|c| {
                self.excluded
                    .iter()
                    .map(|&h| bst.exclusion_list(c, h).to_clause(bst.out_sample_id(h)))
                    .collect()
            })
            .collect();
        Bar {
            antecedent: BarAntecedent { car_items: self.car_items.clone(), disjuncts },
            class: self.class,
        }
    }
}

/// Builds the (MC)²BAR for a supportable (closed) sample set.
fn rule_for_support(bst: &Bst, support: &BitSet) -> Mc2Bar {
    // Closed CAR portion: intersect the supporting samples' item sets.
    let mut car = BitSet::full(bst.n_items());
    for c in support.iter() {
        car.intersect_with(bst.class_sample_items(c));
    }
    // Actively excluded out-samples: those expressing the whole CAR portion.
    let excluded: Vec<usize> =
        (0..bst.n_out_samples()).filter(|&h| car.is_subset(bst.out_sample_items(h))).collect();
    Mc2Bar { class: bst.class(), car_items: car.to_vec(), support: support.clone(), excluded }
}

/// Mine-MCMCBAR (Algorithm 3): the top-k supported (MC)²BARs.
///
/// Rules are returned in non-increasing support order; ties are broken by
/// fewer actively-excluded samples first (the paper's suggested secondary
/// ordering — higher-confidence CAR portions first), then by support set.
/// As in the paper (line 23's batch check), all rules of the final batch
/// size are emitted, so slightly more than `k` rules may be returned.
pub fn mine_topk(bst: &Bst, k: usize) -> Vec<Mc2Bar> {
    mine_filtered(bst, k, None)
}

/// Mine-MCMCBAR-Per-Samp (Algorithm 4): for every class sample `c`, the
/// top-k supported (MC)²BARs whose support contains `c`, merged and
/// deduplicated. Guarantees every training sample is covered by at least
/// one mined rule (when `k ≥ 1`).
pub fn mine_topk_per_sample(bst: &Bst, k: usize) -> Vec<Mc2Bar> {
    let mut seen: HashSet<BitSet> = HashSet::new();
    let mut all: Vec<Mc2Bar> = Vec::new();
    for c in 0..bst.n_class_samples() {
        for rule in mine_filtered(bst, k, Some(c)) {
            if seen.insert(rule.support.clone()) {
                all.push(rule);
            }
        }
    }
    sort_rules(&mut all);
    all
}

/// Shared engine: Algorithm 3, optionally restricted to supports containing
/// a pinned local sample (the Algorithm 4 modification).
fn mine_filtered(bst: &Bst, k: usize, pin: Option<usize>) -> Vec<Mc2Bar> {
    let n = bst.n_class_samples();
    if k == 0 || n == 0 {
        return Vec::new();
    }
    let keep = |s: &BitSet| match pin {
        Some(c) => s.contains(c),
        None => true,
    };

    // Seed candidates with the distinct row supports (already closed sets).
    let mut candidates: HashSet<BitSet> = HashSet::new();
    for g in 0..bst.n_items() {
        let s = bst.row_support(g);
        if !s.is_empty() && keep(&s) {
            candidates.insert(s);
        }
    }
    // The full class set is always supportable (closed: it is the closure
    // of itself); Algorithm 3 reaches it through the widest row supports,
    // but seeding it directly also covers item-free corner cases.
    let full = BitSet::full(n);
    if keep(&full) {
        candidates.insert(full);
    }

    let mut emitted: HashSet<BitSet> = HashSet::new();
    let mut rules: Vec<Mc2Bar> = Vec::new();

    while rules.len() < k && !candidates.is_empty() {
        //

        // Largest candidate size B and its batch (Algorithm 3 lines 8-14).
        let b = candidates.iter().map(BitSet::len).max().expect("non-empty");
        let batch: Vec<BitSet> = candidates.iter().filter(|s| s.len() == b).cloned().collect();
        for s in &batch {
            candidates.remove(s);
        }

        let mut new_rules: Vec<Mc2Bar> = batch.iter().map(|s| rule_for_support(bst, s)).collect();
        sort_rules(&mut new_rules);

        // Intersect the batch with every emitted support to spawn new
        // candidates (lines 15-20).
        let spawn_against: Vec<BitSet> =
            rules.iter().map(|r| r.support.clone()).chain(batch.iter().cloned()).collect();
        for s1 in &batch {
            for s2 in &spawn_against {
                let inter = s1.intersection(s2);
                if !inter.is_empty()
                    && keep(&inter)
                    && !emitted.contains(&inter)
                    && !batch.contains(&inter)
                {
                    candidates.insert(inter);
                }
            }
        }

        for r in new_rules {
            emitted.insert(r.support.clone());
            rules.push(r);
        }
    }
    rules
}

/// Orders rules by support size (desc), then fewer excluded samples, then
/// support-set contents for determinism.
fn sort_rules(rules: &mut [Mc2Bar]) {
    rules.sort_by(|a, b| {
        b.support_len()
            .cmp(&a.support_len())
            .then(a.excluded.len().cmp(&b.excluded.len()))
            .then_with(|| a.support.to_vec().cmp(&b.support.to_vec()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    fn cancer() -> (microarray::BoolDataset, Bst) {
        let d = table1();
        let bst = Bst::build(&d, 0);
        (d, bst)
    }

    #[test]
    fn top_rule_is_the_full_class_closure() {
        // The largest supportable Cancer subset is {s1,s2,s3}; its closed
        // item set is ∩ = {} ... Table 1: s1∩s2∩s3 = {} so car is empty —
        // the trivial rule. The miner must still emit it first.
        let (_, bst) = cancer();
        let rules = mine_topk(&bst, 1);
        assert!(!rules.is_empty());
        assert_eq!(rules[0].support.to_vec(), vec![0, 1, 2]);
        assert!(rules[0].car_items.is_empty());
    }

    #[test]
    fn g2_and_g6_rows_are_maximally_complex() {
        // §4.1: the g2-row support {s1,s3} and g6-row support {s2,s3} are
        // not subsets of any other row support, so both appear as mined
        // supports with their closed item sets.
        let (_, bst) = cancer();
        let rules = mine_topk(&bst, 10);
        let find = |supp: &[usize]| rules.iter().find(|r| r.support.to_vec() == supp);
        let g2 = find(&[0, 2]).expect("support {s1,s3} mined");
        assert_eq!(g2.car_items, vec![1]); // s1 ∩ s3 = {g2}
        let g6 = find(&[1, 2]).expect("support {s2,s3} mined");
        assert_eq!(g6.car_items, vec![5]); // s2 ∩ s3 = {g6}
    }

    #[test]
    fn s2_singleton_rule_is_the_ibrg_upper_bound() {
        // §4.2: the IBRG with support {s2} has upper bound
        // (g1 AND g3 AND g6) ⇒ Cancer.
        let (_, bst) = cancer();
        let rules = mine_topk(&bst, 20);
        let r = rules.iter().find(|r| r.support.to_vec() == vec![1]).expect("{s2} mined");
        assert_eq!(r.car_items, vec![0, 2, 5]); // g1, g3, g6
                                                // g1 is Cancer-exclusive and g6 only otherwise in s5 which lacks
                                                // g1: no Healthy sample expresses the whole set.
        assert!(r.excluded.is_empty());
        assert_eq!(r.car_confidence(), 1.0);
    }

    #[test]
    fn rules_are_sorted_by_support_desc() {
        let (_, bst) = cancer();
        let rules = mine_topk(&bst, 20);
        for w in rules.windows(2) {
            assert!(w[0].support_len() >= w[1].support_len());
        }
    }

    #[test]
    fn supports_are_unique() {
        let (_, bst) = cancer();
        let rules = mine_topk(&bst, 50);
        let set: HashSet<_> = rules.iter().map(|r| r.support.clone()).collect();
        assert_eq!(set.len(), rules.len());
    }

    #[test]
    fn every_mined_support_is_closed() {
        // support == {class samples expressing the whole closed item set}.
        let (_, bst) = cancer();
        for r in mine_topk(&bst, 50) {
            let mut car = BitSet::full(bst.n_items());
            for c in r.support.iter() {
                car.intersect_with(bst.class_sample_items(c));
            }
            assert_eq!(car.to_vec(), r.car_items, "car is the closure of the support");
            let supp_of_car: Vec<usize> = (0..bst.n_class_samples())
                .filter(|&c| r.car_items.iter().all(|&g| bst.class_sample_items(c).contains(g)))
                .collect();
            assert_eq!(supp_of_car, r.support.to_vec(), "support is closed");
        }
    }

    #[test]
    fn mined_bars_are_100_percent_confident_with_matching_support() {
        let (d, bst) = cancer();
        for r in mine_topk(&bst, 50) {
            if r.car_items.is_empty() {
                continue; // the trivial whole-class rule matches everything
            }
            let bar = r.to_bar(&bst);
            assert_eq!(bar.confidence(&d), Some(1.0), "{:?}", r);
            assert_eq!(bar.support_set(&d), r.support_sample_ids(&bst), "{:?}", r);
        }
    }

    #[test]
    fn car_confidence_matches_dataset_confidence() {
        // Theorem 2: stripping the clauses leaves a CAR whose confidence is
        // |supp| / (|supp| + #excluded).
        let (d, bst) = cancer();
        for r in mine_topk(&bst, 50) {
            if r.car_items.is_empty() {
                continue;
            }
            let car = r.to_bar(&bst).strip_to_car();
            let conf = car.confidence(&d).unwrap();
            assert!((conf - r.car_confidence()).abs() < 1e-12, "{:?}", r);
        }
    }

    #[test]
    fn per_sample_mining_covers_every_sample() {
        let (_, bst) = cancer();
        let rules = mine_topk_per_sample(&bst, 2);
        for c in 0..bst.n_class_samples() {
            assert!(rules.iter().any(|r| r.support.contains(c)), "sample column {c} uncovered");
        }
    }

    #[test]
    fn per_sample_supports_are_unique_and_sorted() {
        let (_, bst) = cancer();
        let rules = mine_topk_per_sample(&bst, 3);
        let set: HashSet<_> = rules.iter().map(|r| r.support.clone()).collect();
        assert_eq!(set.len(), rules.len());
        for w in rules.windows(2) {
            assert!(w[0].support_len() >= w[1].support_len());
        }
    }

    #[test]
    fn k_zero_returns_nothing() {
        let (_, bst) = cancer();
        assert!(mine_topk(&bst, 0).is_empty());
    }

    #[test]
    fn healthy_class_mines_too() {
        let d = table1();
        let bst = Bst::build(&d, 1);
        let rules = mine_topk(&bst, 10);
        // {s4,s5} closure: s4 ∩ s5 = {g3, g5}.
        let top = &rules[0];
        assert_eq!(top.support.to_vec(), vec![0, 1]);
        assert_eq!(top.car_items, vec![2, 4]);
        // g5,g6 ⇒ Healthy from §1: support {s5} must be mined with g5,g6
        // inside its closure (s5's closure is all of s5's items).
        let s5 = rules.iter().find(|r| r.support.to_vec() == vec![1]).unwrap();
        assert!(s5.car_items.contains(&4) && s5.car_items.contains(&5));
    }

    #[test]
    fn mining_is_progressive_prefix_stable() {
        // Asking for fewer rules yields a prefix of asking for more
        // (modulo the batch boundary, which sort_rules fixes): check that
        // the k=3 result is a prefix of k=10 by support size ordering.
        let (_, bst) = cancer();
        let few = mine_topk(&bst, 3);
        let many = mine_topk(&bst, 10);
        for (a, b) in few.iter().zip(many.iter()) {
            assert_eq!(a.support_len(), b.support_len());
        }
    }
}
