//! The (MC)²BAR-based classifier sketched at the end of §4.2.
//!
//! Before settling on the parameter-free BSTC (§5.3), the paper outlines
//! a k-parameterized alternative:
//!
//! 1. mine the top-k supported IBRG upper bounds *per training sample*
//!    for every class (Algorithm 4);
//! 2. for a query, compute a classification number in `[0, 1]` for every
//!    upper bound "by using each BAR's exclusion lists (see section 5.2)";
//! 3. classify as the class of the upper bound with the largest number.
//!
//! The paper forgoes developing this scheme because it depends on the
//! support parameter `k`; we implement it as a faithful reading so the
//! trade-off can actually be measured (see the `ablation_arith` /
//! `multiclass` experiments and the crate tests).
//!
//! Classification number of a BAR for query `Q` (the §5.2 quantization
//! applied to a full rule instead of one cell):
//!
//! * the CAR factor is the fraction of the antecedent's items `Q`
//!   expresses (1.0 when it expresses them all);
//! * each disjunct (one per supporting sample) scores the **min** of its
//!   exclusion clauses' `V_e` (a black-dot-like empty conjunction scores
//!   1), and the boolean part takes the **max** over disjuncts (it is an
//!   OR);
//! * the rule's number is the product of the two factors.

use crate::bar::{Bar, Sign};
use crate::bst::Bst;
use crate::mine::{mine_topk_per_sample, Mc2Bar};
use microarray::{BitSet, BoolDataset, ClassId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A trained §4.2 (MC)²BAR classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mc2Classifier {
    /// Per class: the mined upper-bound rules, materialized as BARs.
    rules: Vec<Vec<Bar>>,
    n_classes: usize,
}

impl Mc2Classifier {
    /// Trains by mining the top-k supported (MC)²BARs per training sample
    /// for every class (Algorithm 4) and materializing their BARs.
    pub fn train(data: &BoolDataset, k: usize) -> Mc2Classifier {
        let mut rules = Vec::with_capacity(data.n_classes());
        for class in 0..data.n_classes() {
            let bst = Bst::build(data, class);
            // The trivial whole-class rule (empty CAR portion) is kept:
            // its exclusion clauses still discriminate, and with small k
            // it can be a class's only mined rule.
            let mined = mine_topk_per_sample(&bst, k);
            rules.push(mined.iter().map(|r: &Mc2Bar| r.to_bar(&bst)).collect());
        }
        Mc2Classifier { rules, n_classes: data.n_classes() }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total rules held across classes.
    pub fn n_rules(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }

    /// The §4.2 classification number of one BAR for a query.
    pub fn classification_number(bar: &Bar, query: &BitSet) -> f64 {
        let car = &bar.antecedent.car_items;
        let car_factor = if car.is_empty() {
            1.0
        } else {
            car.iter().filter(|&&g| query.contains(g)).count() as f64 / car.len() as f64
        };
        if car_factor == 0.0 {
            return 0.0;
        }
        let bool_factor = if bar.antecedent.disjuncts.is_empty() {
            1.0
        } else {
            bar.antecedent
                .disjuncts
                .iter()
                .map(|clauses| clauses.iter().map(|c| c.satisfaction(query)).fold(1.0f64, f64::min))
                .fold(0.0f64, f64::max)
        };
        car_factor * bool_factor
    }

    /// The best (rule number, class) for a query, per class.
    pub fn class_scores(&self, query: &BitSet) -> Vec<f64> {
        self.rules
            .iter()
            .map(|class_rules| {
                class_rules
                    .iter()
                    .map(|bar| Self::classification_number(bar, query))
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }

    /// Step (iii): the class of the upper bound with the largest
    /// classification number (smallest class index on ties).
    pub fn classify(&self, query: &BitSet) -> ClassId {
        let scores = self.class_scores(query);
        let mut best = 0;
        for (i, &v) in scores.iter().enumerate().skip(1) {
            if v > scores[best] {
                best = i;
            }
        }
        best
    }

    /// Classifies a batch: the rules are lowered to mask form once
    /// ([`Mc2Classifier::compile`]) and the queries fanned out across
    /// cores. Predictions are identical to per-query [`Mc2Classifier::classify`].
    pub fn classify_all(&self, queries: &[BitSet]) -> Vec<ClassId> {
        let Some(first) = queries.first() else {
            return Vec::new();
        };
        let compiled = self.compile(first.capacity());
        queries.par_iter().map(|q| compiled.classify(q)).collect()
    }

    /// Lowers every rule into word-packed masks over an `n_items`-sized
    /// universe (the capacity of the queries to come), replacing the
    /// per-item clause scans with AND+popcount kernels.
    pub fn compile(&self, n_items: usize) -> CompiledMc2Classifier {
        let rules = self
            .rules
            .iter()
            .map(|class_rules| {
                class_rules.iter().map(|bar| CompiledMc2Bar::compile(bar, n_items)).collect()
            })
            .collect();
        CompiledMc2Classifier { rules, n_classes: self.n_classes }
    }
}

/// One mask of a compiled (MC)²BAR: polarity, word-packed items, length.
#[derive(Clone, Debug)]
struct ClauseMask {
    sign: Sign,
    mask: BitSet,
    len: u32,
}

impl ClauseMask {
    /// Fraction of literals satisfied — same counts as
    /// `ExclusionClause::satisfaction`, via popcount.
    #[inline]
    fn satisfaction(&self, query: &BitSet) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let sat = match self.sign {
            Sign::Pos => self.mask.intersection_len(query),
            Sign::Neg => self.mask.andnot_len(query),
        };
        sat as f64 / self.len as f64
    }
}

/// A [`Bar`] lowered to mask form for §4.2 scoring.
#[derive(Clone, Debug)]
struct CompiledMc2Bar {
    car_mask: BitSet,
    car_len: u32,
    /// Clause masks of every disjunct, flattened; disjunct `d` owns
    /// `clauses[disjunct_offsets[d]..disjunct_offsets[d + 1]]`.
    clauses: Vec<ClauseMask>,
    disjunct_offsets: Vec<u32>,
}

impl CompiledMc2Bar {
    fn compile(bar: &Bar, n_items: usize) -> CompiledMc2Bar {
        let car = &bar.antecedent.car_items;
        let mut clauses = Vec::new();
        let mut disjunct_offsets = vec![0u32];
        for disjunct in &bar.antecedent.disjuncts {
            for clause in disjunct {
                clauses.push(ClauseMask {
                    sign: clause.sign,
                    mask: BitSet::from_iter(n_items, clause.items.iter().copied()),
                    len: clause.items.len() as u32,
                });
            }
            disjunct_offsets.push(clauses.len() as u32);
        }
        CompiledMc2Bar {
            car_mask: BitSet::from_iter(n_items, car.iter().copied()),
            car_len: car.len() as u32,
            clauses,
            disjunct_offsets,
        }
    }

    /// The §4.2 classification number — identical values to
    /// [`Mc2Classifier::classification_number`].
    fn classification_number(&self, query: &BitSet) -> f64 {
        let car_factor = if self.car_len == 0 {
            1.0
        } else {
            self.car_mask.intersection_len(query) as f64 / self.car_len as f64
        };
        if car_factor == 0.0 {
            return 0.0;
        }
        let n_disjuncts = self.disjunct_offsets.len() - 1;
        let bool_factor = if n_disjuncts == 0 {
            1.0
        } else {
            (0..n_disjuncts)
                .map(|d| {
                    let lo = self.disjunct_offsets[d] as usize;
                    let hi = self.disjunct_offsets[d + 1] as usize;
                    self.clauses[lo..hi]
                        .iter()
                        .map(|c| c.satisfaction(query))
                        .fold(1.0f64, f64::min)
                })
                .fold(0.0f64, f64::max)
        };
        car_factor * bool_factor
    }
}

/// A [`Mc2Classifier`] lowered to word-parallel scoring form.
#[derive(Clone, Debug)]
pub struct CompiledMc2Classifier {
    rules: Vec<Vec<CompiledMc2Bar>>,
    n_classes: usize,
}

impl CompiledMc2Classifier {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Best rule number per class — same values as
    /// [`Mc2Classifier::class_scores`].
    pub fn class_scores(&self, query: &BitSet) -> Vec<f64> {
        self.rules
            .iter()
            .map(|class_rules| {
                class_rules
                    .iter()
                    .map(|bar| bar.classification_number(query))
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }

    /// The class of the largest classification number (smallest index on
    /// ties).
    pub fn classify(&self, query: &BitSet) -> ClassId {
        let scores = self.class_scores(query);
        let mut best = 0;
        for (i, &v) in scores.iter().enumerate().skip(1) {
            if v > scores[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::{section54_query, table1};

    #[test]
    fn trains_on_running_example() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 2);
        assert_eq!(m.n_classes(), 2);
        assert!(m.n_rules() > 0);
    }

    #[test]
    fn training_samples_score_their_own_class_perfectly() {
        // Every training sample satisfies at least one of its class's
        // mined 100%-confident rules exactly (Algorithm 4 covers every
        // sample), so its own-class score is 1.
        let d = table1();
        let m = Mc2Classifier::train(&d, 2);
        for s in 0..d.n_samples() {
            let scores = m.class_scores(d.sample(s));
            assert!(
                (scores[d.label(s)] - 1.0).abs() < 1e-12,
                "sample s{} own-class score {:?}",
                s + 1,
                scores
            );
        }
    }

    #[test]
    fn training_samples_classify_correctly() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 2);
        for s in 0..d.n_samples() {
            assert_eq!(m.classify(d.sample(s)), d.label(s), "sample s{}", s + 1);
        }
    }

    #[test]
    fn section_5_4_query_is_cancer_here_too() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 3);
        assert_eq!(m.classify(&section54_query()), 0);
    }

    #[test]
    fn scores_are_bounded() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 3);
        for q in [BitSet::new(6), BitSet::full(6), section54_query()] {
            for v in m.class_scores(&q) {
                assert!((0.0..=1.0).contains(&v), "{v}");
            }
        }
    }

    #[test]
    fn empty_query_ties_to_class_zero() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 2);
        assert_eq!(m.classify(&BitSet::new(6)), 0);
    }

    #[test]
    fn classification_number_components() {
        // A pure-CAR rule scores the expressed fraction of its items.
        let d = table1();
        let bar =
            crate::bar::Bar { antecedent: crate::bar::BarAntecedent::car(vec![0, 2]), class: 0 };
        let q = BitSet::from_iter(6, [0]);
        assert_eq!(Mc2Classifier::classification_number(&bar, &q), 0.5);
        let q = BitSet::from_iter(6, [0, 2]);
        assert_eq!(Mc2Classifier::classification_number(&bar, &q), 1.0);
        let _ = d;
    }

    #[test]
    fn larger_k_never_reduces_rule_count() {
        let d = table1();
        let small = Mc2Classifier::train(&d, 1);
        let large = Mc2Classifier::train(&d, 4);
        assert!(large.n_rules() >= small.n_rules());
    }

    #[test]
    fn compiled_scores_match_reference() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 3);
        let compiled = m.compile(d.n_items());
        let mut queries: Vec<BitSet> = d.samples().to_vec();
        queries.push(section54_query());
        queries.push(BitSet::new(6));
        queries.push(BitSet::full(6));
        for q in &queries {
            assert_eq!(m.class_scores(q), compiled.class_scores(q), "{q:?}");
            assert_eq!(m.classify(q), compiled.classify(q), "{q:?}");
        }
        assert_eq!(
            m.classify_all(&queries),
            queries.iter().map(|q| m.classify(q)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn serializes() {
        let d = table1();
        let m = Mc2Classifier::train(&d, 2);
        let back: Mc2Classifier =
            serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        let q = section54_query();
        assert_eq!(back.classify(&q), m.classify(&q));
    }
}
