//! The BSTC classifier: BST cell-rule quantized evaluation (BSTCE,
//! Algorithm 5) and class selection (Algorithm 6), plus the §5.3.2
//! explanation API and the §8 "alternative arithmetization" ablation.
//!
//! For a query `Q` and a class BST `T(i)`:
//!
//! 1. every (c, h) exclusion list gets `V_e` = fraction of its literals `Q`
//!    satisfies (line 4);
//! 2. every non-empty cell (g, c) with `Q[g] = 1` gets value 1 for a black
//!    dot, otherwise the **min** of its lists' `V_e` (lines 6–12 — the
//!    paper deliberately uses min rather than a product, "we don't assume
//!    independence");
//! 3. the column value `V_s` is the mean of the column's non-blank cell
//!    values (line 14), and the classification value the mean of the
//!    non-blank columns' `V_s` (line 16).
//!
//! BSTC classifies `Q` as the smallest class index maximizing the value
//! (Algorithm 6).

use crate::bst::Bst;
use crate::compiled::CompiledModel;
use microarray::{BitSet, BoolDataset, ClassId, ItemId, SampleId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How a cell's exclusion-list satisfactions are combined into the cell
/// value (step 2 above). The paper ships [`Arithmetization::Min`] and names
/// alternatives as future work (§8); the others are our ablation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arithmetization {
    /// `min` over the cell's lists — Algorithm 5 as published.
    #[default]
    Min,
    /// Product of the lists' satisfactions — the "assume independence"
    /// variant the paper explicitly declines (line 10's discussion).
    Product,
    /// Arithmetic mean of the lists' satisfactions.
    Mean,
}

impl Arithmetization {
    pub(crate) fn combine(self, values: impl Iterator<Item = f64>) -> f64 {
        match self {
            Arithmetization::Min => values.fold(1.0, f64::min),
            Arithmetization::Product => values.product(),
            Arithmetization::Mean => {
                let mut sum = 0.0;
                let mut n = 0usize;
                for v in values {
                    sum += v;
                    n += 1;
                }
                if n == 0 {
                    1.0
                } else {
                    sum / n as f64
                }
            }
        }
    }
}

/// One satisfied cell rule, for §5.3.2 explanations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellExplanation {
    /// The class whose BST the cell belongs to.
    pub class: ClassId,
    /// The item (gene row).
    pub item: ItemId,
    /// The supporting training sample (original id) of the cell's column.
    pub supporting_sample: SampleId,
    /// The cell's satisfaction level in `[0, 1]` (1 for black dots).
    pub satisfaction: f64,
}

/// A trained BSTC model: one BST per class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BstcModel {
    bsts: Vec<Bst>,
    arith: Arithmetization,
}

impl BstcModel {
    /// Trains on a boolean dataset: builds all class BSTs
    /// (`O(|S|²·|G|)`, §3.1.1). Parameter-free, as advertised.
    pub fn train(data: &BoolDataset) -> BstcModel {
        Self::train_with(data, Arithmetization::Min)
    }

    /// Trains with an explicit arithmetization (ablation entry point).
    pub fn train_with(data: &BoolDataset, arith: Arithmetization) -> BstcModel {
        BstcModel { bsts: Bst::build_all(data), arith }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.bsts.len()
    }

    /// The underlying BST of a class.
    pub fn bst(&self, class: ClassId) -> &Bst {
        &self.bsts[class]
    }

    /// The arithmetization the model was trained with.
    pub fn arithmetization(&self) -> Arithmetization {
        self.arith
    }

    /// Lowers the model into its word-parallel evaluation form (masks +
    /// popcount kernels; see [`crate::compiled`]). Predictions and class
    /// values are bit-identical to this reference model's — use the
    /// compiled form on every serving/batch hot path.
    pub fn compile(&self) -> CompiledModel {
        CompiledModel::compile(self)
    }

    /// Streams the model's canonical compact JSON — byte-identical to
    /// `serde_json::to_string(self)` — into an `io::Write` without
    /// building the serializer's in-memory tree. The model is almost
    /// entirely its BSTs, so this rides [`Bst::write_json_to`]; the
    /// bundle's streaming saver uses it to cap model-write memory.
    pub fn write_json_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(b"{\"bsts\":[")?;
        for (i, bst) in self.bsts.iter().enumerate() {
            if i > 0 {
                w.write_all(b",")?;
            }
            bst.write_json_to(w)?;
        }
        let arith = match self.arith {
            Arithmetization::Min => "Min",
            Arithmetization::Product => "Product",
            Arithmetization::Mean => "Mean",
        };
        write!(w, "],\"arith\":\"{arith}\"}}")
    }

    /// BSTCE (Algorithm 5): the classification value of `query` against one
    /// class BST.
    pub fn class_value(&self, class: ClassId, query: &BitSet) -> f64 {
        bstce(&self.bsts[class], query, self.arith)
    }

    /// Classification values for every class, indexed by [`ClassId`].
    pub fn class_values(&self, query: &BitSet) -> Vec<f64> {
        self.bsts.iter().map(|b| bstce(b, query, self.arith)).collect()
    }

    /// BSTC (Algorithm 6): the smallest class index with maximal value.
    pub fn classify(&self, query: &BitSet) -> ClassId {
        let values = self.class_values(query);
        let mut best = 0;
        for (i, &v) in values.iter().enumerate().skip(1) {
            if v > values[best] {
                best = i;
            }
        }
        best
    }

    /// Classifies a batch of queries, fanned out across cores (tiny
    /// batches stay sequential via the rayon shim's fast path).
    pub fn classify_all(&self, queries: &[BitSet]) -> Vec<ClassId> {
        queries.par_iter().map(|q| self.classify(q)).collect()
    }

    /// The §8 confidence heuristic: normalized gap between the highest and
    /// second-highest class values (`0` when fewer than two classes or the
    /// top value is 0).
    pub fn confidence_gap(&self, query: &BitSet) -> f64 {
        confidence_gap_of(&self.class_values(query))
    }

    /// §5.3.2: justifies classifying `query` as `class` by returning every
    /// atomic cell rule of that class's BST with satisfaction ≥ `threshold`
    /// ("requires no additional per-query classification time" — we simply
    /// surface the values BSTCE already computes).
    pub fn explain(&self, class: ClassId, query: &BitSet, threshold: f64) -> Vec<CellExplanation> {
        let bst = &self.bsts[class];
        let mut out = Vec::new();
        let sat = CellSatisfactions::compute(bst, query, self.arith);
        for c in 0..bst.n_class_samples() {
            let shared = query.intersection(bst.class_sample_items(c));
            for g in shared.iter() {
                let v = sat.cell_value(bst, g, c);
                if v >= threshold {
                    out.push(CellExplanation {
                        class,
                        item: g,
                        supporting_sample: bst.class_sample_id(c),
                        satisfaction: v,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.satisfaction.total_cmp(&a.satisfaction));
        out
    }
}

/// Normalized gap between the highest and second-highest entries of a
/// class-value slice — the §8 confidence heuristic, as a single top-2
/// scan (no clone, no sort; the serve hot path calls this per query).
/// Returns 0 for fewer than two values, a non-positive maximum, or a tie
/// at the top.
pub fn confidence_gap_of(values: &[f64]) -> f64 {
    let [first, second, rest @ ..] = values else {
        return 0.0; // zero or one class
    };
    let (mut best, mut runner_up) =
        if first.total_cmp(second).is_ge() { (*first, *second) } else { (*second, *first) };
    for &v in rest {
        if v.total_cmp(&best).is_gt() {
            runner_up = best;
            best = v;
        } else if v.total_cmp(&runner_up).is_gt() {
            runner_up = v;
        }
    }
    if best <= 0.0 {
        return 0.0;
    }
    (best - runner_up) / best
}

/// Per-query memo of exclusion-list satisfactions (`V_e` of line 4):
/// each (c, h) pair's list is evaluated once, not once per cell.
struct CellSatisfactions {
    /// `v[c][h]` = satisfaction of the (c, h) exclusion list.
    v: Vec<Vec<f64>>,
    arith: Arithmetization,
}

impl CellSatisfactions {
    fn compute(bst: &Bst, query: &BitSet, arith: Arithmetization) -> CellSatisfactions {
        // Distinct lists are evaluated once and fanned out to their (c, h)
        // pairs — the lossless form of §8's exclusion-list culling.
        let v = (0..bst.n_class_samples())
            .map(|c| {
                let per_unique: Vec<f64> = bst
                    .unique_exclusion_lists(c)
                    .iter()
                    .map(|list| list.satisfaction(query))
                    .collect();
                (0..bst.n_out_samples())
                    .map(|h| per_unique[bst.exclusion_list_index(c, h)])
                    .collect()
            })
            .collect();
        CellSatisfactions { v, arith }
    }

    /// Cell value of a non-empty (g, c) cell (lines 7–11).
    #[inline]
    fn cell_value(&self, bst: &Bst, g: ItemId, c: usize) -> f64 {
        let out = bst.out_expressing(g);
        if out.is_empty() {
            return 1.0; // black dot
        }
        self.arith.combine(out.iter().map(|h| self.v[c][h]))
    }
}

/// BSTCE (Algorithm 5) against one BST.
fn bstce(bst: &Bst, query: &BitSet, arith: Arithmetization) -> f64 {
    let sat = CellSatisfactions::compute(bst, query, arith);
    let mut col_sum = 0.0;
    let mut cols = 0usize;
    for c in 0..bst.n_class_samples() {
        // Non-blank cells of this column: items expressed by both the query
        // and the column's sample.
        let shared = query.intersection(bst.class_sample_items(c));
        if shared.is_empty() {
            continue; // blank column (line 13's "non-blank" filter)
        }
        let mut sum = 0.0;
        let mut n = 0usize;
        for g in shared.iter() {
            sum += sat.cell_value(bst, g, c);
            n += 1;
        }
        col_sum += sum / n as f64; // V_s (line 14)
        cols += 1;
    }
    if cols == 0 {
        0.0 // the query shares nothing with this class
    } else {
        col_sum / cols as f64 // line 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::{section54_query, table1};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn figure_3_cancer_value_is_three_quarters() {
        // The paper's worked example: BSTCE(T(Cancer), Q) = (0.75+1+0.5)/3 = 0.75.
        let d = table1();
        let model = BstcModel::train(&d);
        let v = model.class_value(0, &section54_query());
        assert!(close(v, 0.75), "got {v}");
    }

    #[test]
    fn section_5_4_healthy_value_is_three_eighths() {
        let d = table1();
        let model = BstcModel::train(&d);
        let v = model.class_value(1, &section54_query());
        assert!(close(v, 0.375), "got {v}");
    }

    #[test]
    fn section_5_4_query_classified_as_cancer() {
        let d = table1();
        let model = BstcModel::train(&d);
        assert_eq!(model.classify(&section54_query()), 0);
        let values = model.class_values(&section54_query());
        assert!(close(values[0], 0.75) && close(values[1], 0.375));
    }

    #[test]
    fn training_samples_classify_correctly() {
        // Every Table 1 training sample should be assigned its own class —
        // each satisfies its own 100%-confident cell rules exactly.
        let d = table1();
        let model = BstcModel::train(&d);
        for s in 0..d.n_samples() {
            assert_eq!(model.classify(d.sample(s)), d.label(s), "sample s{}", s + 1);
        }
    }

    #[test]
    fn empty_query_has_zero_values_and_ties_break_low() {
        let d = table1();
        let model = BstcModel::train(&d);
        let q = BitSet::new(6);
        assert_eq!(model.class_values(&q), vec![0.0, 0.0]);
        // Algorithm 6 returns the smallest maximizing index.
        assert_eq!(model.classify(&q), 0);
        assert_eq!(model.confidence_gap(&q), 0.0);
    }

    #[test]
    fn black_dot_item_boosts_its_class() {
        // A query expressing only g1 (Cancer-exclusive) maxes the Cancer
        // value at 1.0 and zeroes Healthy (no shared items).
        let d = table1();
        let model = BstcModel::train(&d);
        let q = BitSet::from_iter(6, [0]);
        let values = model.class_values(&q);
        assert!(close(values[0], 1.0), "{values:?}");
        assert_eq!(values[1], 0.0);
        assert_eq!(model.classify(&q), 0);
        assert!(close(model.confidence_gap(&q), 1.0));
    }

    #[test]
    fn explain_returns_satisfied_cells_sorted() {
        let d = table1();
        let model = BstcModel::train(&d);
        let q = section54_query();
        let ex = model.explain(0, &q, 0.0);
        // Non-blank cells for Q = {g1,g4,g5}: (g1,s1), (g5,s1), (g1,s2), (g4,s3).
        assert_eq!(ex.len(), 4);
        assert!(ex.windows(2).all(|w| w[0].satisfaction >= w[1].satisfaction));
        // Threshold 1.0 keeps only the two black-dot g1 cells.
        let strong = model.explain(0, &q, 1.0);
        assert_eq!(strong.len(), 2);
        assert!(strong.iter().all(|e| e.item == 0 && e.satisfaction == 1.0));
    }

    #[test]
    fn explain_values_match_figure_3() {
        let d = table1();
        let model = BstcModel::train(&d);
        let ex = model.explain(0, &section54_query(), 0.0);
        let find = |item: usize, sample: usize| {
            ex.iter()
                .find(|e| e.item == item && e.supporting_sample == sample)
                .map(|e| e.satisfaction)
        };
        assert!(close(find(0, 0).unwrap(), 1.0)); // (g1, s1) black dot
        assert!(close(find(4, 0).unwrap(), 0.5)); // (g5, s1) min(1, 1/2)
        assert!(close(find(3, 2).unwrap(), 0.5)); // (g4, s3)
    }

    #[test]
    fn confidence_gap_of_matches_sort_based_reference() {
        // The single-pass top-2 scan must agree with the clone-and-sort
        // formulation it replaced, including on ties and duplicates.
        let reference = |values: &[f64]| -> f64 {
            let mut sorted = values.to_vec();
            sorted.sort_by(|a, b| b.total_cmp(a));
            if sorted.len() < 2 || sorted[0] <= 0.0 {
                return 0.0;
            }
            (sorted[0] - sorted[1]) / sorted[0]
        };
        let cases: &[&[f64]] = &[
            &[],
            &[0.7],
            &[0.75, 0.375],
            &[0.375, 0.75],
            &[0.5, 0.5],            // exact tie at the top → gap 0
            &[0.25, 0.5, 0.5, 0.1], // tie not in first position
            &[0.0, 0.0],
            &[1.0, 0.0, 0.5, 0.99, 0.25],
            &[0.2, 0.4, 0.6, 0.8], // ascending: best arrives last
        ];
        for values in cases {
            assert_eq!(confidence_gap_of(values), reference(values), "{values:?}");
        }
    }

    #[test]
    fn confidence_gap_ties_are_zero() {
        // Two classes with identical values: no confidence whatsoever.
        let items = vec!["g1".into(), "g2".into()];
        let classes = vec!["A".into(), "B".into()];
        let samples = vec![BitSet::from_iter(2, [0]), BitSet::from_iter(2, [1])];
        let d = BoolDataset::new(items, classes, samples, vec![0, 1]).unwrap();
        let model = BstcModel::train(&d);
        let q = BitSet::from_iter(2, [0, 1]); // symmetric w.r.t. both classes
        let values = model.class_values(&q);
        assert_eq!(values[0], values[1]);
        assert!(values[0] > 0.0);
        assert_eq!(model.confidence_gap(&q), 0.0);
    }

    #[test]
    fn arithmetizations_agree_on_single_list_cells() {
        // With at most one exclusion list per relevant cell, min, product
        // and mean coincide.
        let d = table1();
        let q = BitSet::from_iter(6, [3]); // g4: the only non-empty Cancer cell has 1 list
        let v_min = BstcModel::train_with(&d, Arithmetization::Min).class_value(0, &q);
        let v_prod = BstcModel::train_with(&d, Arithmetization::Product).class_value(0, &q);
        let v_mean = BstcModel::train_with(&d, Arithmetization::Mean).class_value(0, &q);
        assert!(close(v_min, v_prod) && close(v_min, v_mean));
    }

    #[test]
    fn product_is_at_most_min_is_at_most_mean() {
        // For values in [0,1]: Π ≤ min ≤ mean, hence the class values obey
        // the same ordering cell-wise and overall.
        let d = table1();
        let q = section54_query();
        for class in 0..2 {
            let v_prod = BstcModel::train_with(&d, Arithmetization::Product).class_value(class, &q);
            let v_min = BstcModel::train_with(&d, Arithmetization::Min).class_value(class, &q);
            let v_mean = BstcModel::train_with(&d, Arithmetization::Mean).class_value(class, &q);
            assert!(v_prod <= v_min + 1e-12);
            assert!(v_min <= v_mean + 1e-12);
        }
    }

    #[test]
    fn multiclass_classification_works() {
        // Three classes, one exclusive marker each.
        let items: Vec<String> = (0..3).map(|i| format!("m{i}")).collect();
        let classes: Vec<String> = (0..3).map(|i| format!("c{i}")).collect();
        let mk = |i: usize| BitSet::from_iter(3, [i]);
        let d = BoolDataset::new(
            items,
            classes,
            vec![mk(0), mk(0), mk(1), mk(1), mk(2), mk(2)],
            vec![0, 0, 1, 1, 2, 2],
        )
        .unwrap();
        let model = BstcModel::train(&d);
        assert_eq!(model.n_classes(), 3);
        for (marker, class) in [(0usize, 0usize), (1, 1), (2, 2)] {
            assert_eq!(model.classify(&mk(marker)), class);
        }
    }

    #[test]
    fn model_serializes() {
        let d = table1();
        let model = BstcModel::train(&d);
        let json = serde_json::to_string(&model).unwrap();
        let back: BstcModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.classify(&section54_query()), 0);
        assert!(close(back.class_value(0, &section54_query()), 0.75));
    }
}
