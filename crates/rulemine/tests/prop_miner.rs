//! Property tests: the row-enumeration Top-k miner must agree with a
//! brute-force closed-itemset enumerator on small universes, and lower
//! bounds must be exact and minimal.

use microarray::{BitSet, BoolDataset};
use proptest::prelude::*;
use rulemine::{mine_lower_bounds, mine_topk_groups, Budget, Outcome, TopkParams};
use std::collections::{HashMap, HashSet};

fn dataset() -> impl Strategy<Value = BoolDataset> {
    (2usize..3, 3usize..7, 2usize..8).prop_flat_map(|(n_classes, n_items, extra)| {
        let n_samples = n_classes + extra;
        (
            prop::collection::vec(prop::collection::vec(0..n_items, 0..n_items), n_samples),
            prop::collection::vec(0..n_classes, n_samples - n_classes),
        )
            .prop_map(move |(sample_items, tail)| {
                let item_names = (0..n_items).map(|i| format!("g{i}")).collect();
                let class_names = (0..n_classes).map(|c| format!("c{c}")).collect();
                let sets: Vec<BitSet> = sample_items
                    .iter()
                    .map(|items| BitSet::from_iter(n_items, items.iter().copied()))
                    .collect();
                let mut labels: Vec<usize> = (0..n_classes).collect();
                labels.extend(tail);
                BoolDataset::new(item_names, class_names, sets, labels).unwrap()
            })
    })
}

/// Brute force: every non-empty closed itemset of the class (closure of
/// some class-row subset), with class rows / supports.
fn brute_closed_groups(d: &BoolDataset, class: usize) -> HashMap<Vec<usize>, Vec<usize>> {
    let rows = d.class_members(class);
    let n = rows.len();
    let mut out: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
    for mask in 1u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        let mut items = BitSet::full(d.n_items());
        for &i in &subset {
            items.intersect_with(d.sample(rows[i]));
        }
        if items.is_empty() {
            continue;
        }
        // Closure: all class rows containing the itemset.
        let closure: Vec<usize> = (0..n).filter(|&i| items.is_subset(d.sample(rows[i]))).collect();
        let mut closed_items = BitSet::full(d.n_items());
        for &i in &closure {
            closed_items.intersect_with(d.sample(rows[i]));
        }
        out.insert(closed_items.to_vec(), closure);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With k large and minsup 0, the miner must enumerate exactly the
    /// closed itemsets the brute-force search finds, with matching rows.
    #[test]
    fn topk_matches_brute_force(d in dataset()) {
        for class in 0..d.n_classes() {
            let mut budget = Budget::unlimited();
            let res = mine_topk_groups(
                &d, class, TopkParams { k: 1000, minsup: 0.0 }, &mut budget);
            prop_assert_eq!(res.outcome, Outcome::Finished);
            let brute = brute_closed_groups(&d, class);
            let mined: HashMap<Vec<usize>, Vec<usize>> = res
                .groups
                .iter()
                .map(|g| (g.items.clone(), g.class_rows.clone()))
                .collect();
            prop_assert_eq!(&mined, &brute,
                "class {} mined {} vs brute {}", class, mined.len(), brute.len());
        }
    }

    /// Mined statistics are internally consistent.
    #[test]
    fn group_statistics_consistent(d in dataset()) {
        for class in 0..d.n_classes() {
            let mut budget = Budget::unlimited();
            let res = mine_topk_groups(
                &d, class, TopkParams { k: 50, minsup: 0.3 }, &mut budget);
            for g in &res.groups {
                prop_assert_eq!(g.class_support, g.class_rows.len());
                prop_assert!(g.total_support >= g.class_support);
                let expect_conf = g.class_support as f64 / g.total_support as f64;
                prop_assert!((g.confidence - expect_conf).abs() < 1e-12);
                // Recount from the dataset.
                let total = (0..d.n_samples())
                    .filter(|&s| g.items.iter().all(|&i| d.sample(s).contains(i)))
                    .count();
                prop_assert_eq!(total, g.total_support);
            }
        }
    }

    /// Lower bounds: exact support signature, minimality, and no bound is
    /// a superset of another.
    #[test]
    fn lower_bounds_exact_and_minimal(d in dataset()) {
        let support_of = |items: &[usize]| -> Vec<usize> {
            (0..d.n_samples())
                .filter(|&s| items.iter().all(|&g| d.sample(s).contains(g)))
                .collect()
        };
        for class in 0..d.n_classes() {
            let mut budget = Budget::unlimited();
            let res = mine_topk_groups(
                &d, class, TopkParams { k: 5, minsup: 0.0 }, &mut budget);
            for g in res.groups.iter().take(4) {
                let mut b = Budget::unlimited();
                let lb = mine_lower_bounds(&d, g, 10, &mut b);
                let target = support_of(&g.items);
                for bound in &lb.bounds {
                    prop_assert_eq!(&support_of(bound), &target);
                    for skip in 0..bound.len() {
                        let reduced: Vec<usize> = bound.iter().enumerate()
                            .filter(|&(i, _)| i != skip).map(|(_, &x)| x).collect();
                        // Rules need non-empty antecedents: minimality is
                        // over non-empty proper subsets only.
                        if reduced.is_empty() {
                            continue;
                        }
                        prop_assert!(support_of(&reduced) != target,
                            "non-minimal bound {:?}", bound);
                    }
                }
                let as_sets: Vec<HashSet<usize>> =
                    lb.bounds.iter().map(|b| b.iter().copied().collect()).collect();
                for i in 0..as_sets.len() {
                    for j in 0..as_sets.len() {
                        if i != j {
                            prop_assert!(!as_sets[i].is_subset(&as_sets[j]) || i == j);
                        }
                    }
                }
            }
        }
    }

    /// RCBT classification is deterministic and always returns a valid
    /// class.
    #[test]
    fn rcbt_classification_valid(d in dataset(),
                                 q_items in prop::collection::vec(0usize..7, 0..7)) {
        let mut tb = Budget::unlimited();
        let mut lbb = Budget::unlimited();
        let t = rulemine::train_rcbt(
            &d,
            rulemine::RcbtParams { k: 3, nl: 5, minsup: 0.0 },
            &mut tb,
            &mut lbb,
        );
        let q = BitSet::from_iter(d.n_items(), q_items.iter().map(|&g| g % d.n_items()));
        let c1 = t.model.classify(&q);
        let c2 = t.model.classify(&q);
        prop_assert_eq!(c1, c2);
        prop_assert!(c1 < d.n_classes());
    }

    /// A budgeted run returns a subset of the unbudgeted run's groups.
    #[test]
    fn budgeted_run_is_partial_prefix(d in dataset()) {
        let params = TopkParams { k: 10, minsup: 0.0 };
        let mut full_budget = Budget::unlimited();
        let full = mine_topk_groups(&d, 0, params, &mut full_budget);
        let mut small = Budget::with_nodes(5);
        let partial = mine_topk_groups(&d, 0, params, &mut small);
        let full_items: HashSet<Vec<usize>> =
            full.groups.iter().map(|g| g.items.clone()).collect();
        for g in &partial.groups {
            prop_assert!(full_items.contains(&g.items),
                "budgeted run invented a group");
        }
    }
}
