//! Property tests for the CBA baseline.

use microarray::{BitSet, BoolDataset};
use proptest::prelude::*;
use rulemine::{train_cba, Budget, CbaParams, Outcome};

fn dataset() -> impl Strategy<Value = BoolDataset> {
    (2usize..4, 3usize..8, 3usize..12).prop_flat_map(|(n_classes, n_items, extra)| {
        let n_samples = n_classes + extra;
        (
            prop::collection::vec(prop::collection::vec(0..n_items, 0..n_items), n_samples),
            prop::collection::vec(0..n_classes, n_samples - n_classes),
        )
            .prop_map(move |(sample_items, tail)| {
                let item_names = (0..n_items).map(|i| format!("g{i}")).collect();
                let class_names = (0..n_classes).map(|c| format!("c{c}")).collect();
                let sets: Vec<BitSet> = sample_items
                    .iter()
                    .map(|items| BitSet::from_iter(n_items, items.iter().copied()))
                    .collect();
                let mut labels: Vec<usize> = (0..n_classes).collect();
                labels.extend(tail);
                BoolDataset::new(item_names, class_names, sets, labels).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selected rules clear both thresholds and are sorted by precedence.
    #[test]
    fn selected_rules_respect_thresholds(d in dataset()) {
        let params = CbaParams { minsup: 0.2, minconf: 0.6, max_len: 3 };
        let mut b = Budget::unlimited();
        let t = train_cba(&d, params, &mut b);
        prop_assert_eq!(t.outcome, Outcome::Finished);
        let min_count = ((params.minsup * d.n_samples() as f64).ceil() as usize).max(1);
        let mut last_conf = f64::INFINITY;
        for car in t.model.rules_as_cars() {
            let conf = car.confidence(&d).expect("selected rules match something");
            let total = car.total_matches(&d);
            prop_assert!(total >= min_count, "{car:?} support {total} < {min_count}");
            prop_assert!(conf >= params.minconf - 1e-12, "{car:?} conf {conf}");
            prop_assert!(car.items.len() <= params.max_len);
            prop_assert!(conf <= last_conf + 1e-12, "precedence not by confidence");
            last_conf = conf;
        }
    }

    /// Classification is total, deterministic and valid.
    #[test]
    fn classification_valid(d in dataset(),
                            q in prop::collection::vec(0usize..8, 0..8)) {
        let mut b = Budget::unlimited();
        let t = train_cba(&d, CbaParams::default(), &mut b);
        let query = BitSet::from_iter(d.n_items(), q.iter().map(|&g| g % d.n_items()));
        let c = t.model.classify(&query);
        prop_assert_eq!(c, t.model.classify(&query));
        prop_assert!(c < d.n_classes());
    }

    /// Every selected rule was useful at selection time: it matches at
    /// least one training sample of its own class.
    #[test]
    fn selected_rules_match_their_class(d in dataset()) {
        let mut b = Budget::unlimited();
        let t = train_cba(&d, CbaParams { minsup: 0.15, minconf: 0.5, max_len: 2 }, &mut b);
        for car in t.model.rules_as_cars() {
            prop_assert!(car.support(&d) > 0, "{car:?} matches no own-class sample");
        }
    }
}
