//! Top-k covering rule group mining (Cong et al., SIGMOD 2005 — the
//! "Top-k" executable of the paper's §6).
//!
//! A **rule group** for class `C_i` is the equivalence class of CARs
//! `A ⇒ C_i` sharing one antecedent support set; it is identified by its
//! unique upper bound — the *closed* item set of the supporting rows. The
//! miner finds, for every class row, the `k` most confident rule groups
//! covering that row subject to a minimum (class-)support threshold.
//!
//! Search is row enumeration over class-sample subsets with LCM-style
//! prefix-preserving closure extension, minimum-support reachability
//! pruning, and a confidence upper-bound cut against the current top-k
//! floors. This is the pruned **exponential** search the paper sets out to
//! avoid — the whole point of the baseline — so every node polls a
//! [`Budget`] and the miner returns partial results on expiry.

use crate::budget::{Budget, Outcome};
use microarray::{BitSet, BoolDataset, ClassId, ItemId};
use serde::{Deserialize, Serialize};

/// A mined rule group, represented by its upper bound.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuleGroup {
    /// Consequent class.
    pub class: ClassId,
    /// The closed antecedent (upper bound), ascending.
    pub items: Vec<ItemId>,
    /// Class rows supported (local indices within the class).
    pub class_rows: Vec<usize>,
    /// `|{class samples ⊇ items}|`.
    pub class_support: usize,
    /// `|{any samples ⊇ items}|`.
    pub total_support: usize,
    /// `class_support / total_support`.
    pub confidence: f64,
}

/// Parameters of the miner. The paper's defaults: `minsup = 0.7`, `k = 10`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TopkParams {
    /// Number of covering rule groups to keep per class row.
    pub k: usize,
    /// Minimum class support as a fraction of the class size.
    pub minsup: f64,
}

impl Default for TopkParams {
    fn default() -> Self {
        TopkParams { k: 10, minsup: 0.7 }
    }
}

/// Result of a mining run.
#[derive(Clone, Debug)]
pub struct TopkResult {
    /// Distinct rule groups, best (confidence, then support) first.
    pub groups: Vec<RuleGroup>,
    /// Whether the search space was exhausted within budget.
    pub outcome: Outcome,
    /// Search nodes explored.
    pub nodes: u64,
}

/// Per-row top-k floors: the k best (confidence, class_support) seen so far
/// for each class row.
struct Covering {
    k: usize,
    /// `best[row]` sorted descending; length ≤ k.
    best: Vec<Vec<(f64, usize, usize)>>, // (conf, class_support, group index)
}

impl Covering {
    fn new(rows: usize, k: usize) -> Covering {
        Covering { k, best: vec![Vec::new(); rows] }
    }

    /// Offers a group to one row's list; returns true if it entered.
    fn offer(&mut self, row: usize, conf: f64, support: usize, group: usize) -> bool {
        let list = &mut self.best[row];
        if list.len() == self.k {
            let (wc, ws, _) = list[self.k - 1];
            if conf < wc || (conf == wc && support <= ws) {
                return false; // strictly better than the k-th required
            }
        }
        list.push((conf, support, group));
        // Lists hold at most k+1 entries: a sort is cheap and obviously right.
        list.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
        list.truncate(self.k);
        true
    }

    /// The weakest confidence that could still matter anywhere: if every
    /// row's list is full, the minimum k-th confidence; otherwise 0.
    fn global_floor(&self) -> f64 {
        let mut floor = f64::INFINITY;
        for list in &self.best {
            if list.len() < self.k {
                return 0.0;
            }
            floor = floor.min(list[self.k - 1].0);
        }
        if floor.is_finite() {
            floor
        } else {
            0.0
        }
    }

    fn group_indices(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.best.iter().flatten().map(|&(_, _, g)| g).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Mines the top-k covering rule groups of one class.
pub fn mine_topk_groups(
    data: &BoolDataset,
    class: ClassId,
    params: TopkParams,
    budget: &mut Budget,
) -> TopkResult {
    let class_rows: Vec<usize> = data.class_members(class);
    let out_rows: Vec<usize> = (0..data.n_samples()).filter(|&s| data.label(s) != class).collect();
    let n = class_rows.len();
    let n_items = data.n_items();
    let min_rows = ((params.minsup * n as f64).ceil() as usize).max(1);

    let class_sets: Vec<&BitSet> = class_rows.iter().map(|&s| data.sample(s)).collect();
    let out_sets: Vec<&BitSet> = out_rows.iter().map(|&s| data.sample(s)).collect();

    let mut groups: Vec<RuleGroup> = Vec::new();
    let mut covering = Covering::new(n, params.k);
    let mut seen_closures: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();

    // Recursive row enumeration. `rows` is the closed row set (ascending
    // local indices), `itemset` its closed item set.
    struct Ctx<'a> {
        class_sets: &'a [&'a BitSet],
        out_sets: &'a [&'a BitSet],
        n_items: usize,
        min_rows: usize,
        class: ClassId,
    }

    fn closure(ctx: &Ctx<'_>, itemset: &BitSet) -> Vec<usize> {
        (0..ctx.class_sets.len()).filter(|&r| itemset.is_subset(ctx.class_sets[r])).collect()
    }

    fn out_support(ctx: &Ctx<'_>, itemset: &BitSet) -> usize {
        ctx.out_sets.iter().filter(|h| itemset.is_subset(h)).count()
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        ctx: &Ctx<'_>,
        rows: Vec<usize>,
        itemset: BitSet,
        next: usize,
        budget: &mut Budget,
        groups: &mut Vec<RuleGroup>,
        covering: &mut Covering,
        seen: &mut std::collections::HashSet<Vec<usize>>,
    ) {
        if !budget.tick() {
            return;
        }
        let n = ctx.class_sets.len();

        // Record this closed group if it clears minsup. Only groups that
        // enter some row's top-k list are materialized.
        if rows.len() >= ctx.min_rows && !itemset.is_empty() && seen.insert(rows.clone()) {
            let os = out_support(ctx, &itemset);
            let conf = rows.len() as f64 / (rows.len() + os) as f64;
            let idx = groups.len();
            let mut entered = false;
            for &r in &rows {
                entered |= covering.offer(r, conf, rows.len(), idx);
            }
            if entered {
                groups.push(RuleGroup {
                    class: ctx.class,
                    items: itemset.to_vec(),
                    class_rows: rows.clone(),
                    class_support: rows.len(),
                    total_support: rows.len() + os,
                    confidence: conf,
                });
            }
        }

        // Minimum-support reachability: even absorbing all remaining rows
        // cannot reach min_rows.
        if rows.len() + n.saturating_sub(next) < ctx.min_rows {
            return;
        }

        // Confidence upper bound for every descendant: their out-support is
        // at least this node's (itemsets only shrink), class support at
        // most n, so conf ≤ n / (n + os). Prune when that cannot beat the
        // floor every row already holds.
        if !itemset.is_empty() {
            let os = out_support(ctx, &itemset);
            let ub = n as f64 / (n + os) as f64;
            if ub < covering.global_floor() {
                return;
            }
        }

        for r in next..n {
            if rows.binary_search(&r).is_ok() {
                continue;
            }
            let new_items = if rows.is_empty() {
                ctx.class_sets[r].clone()
            } else {
                itemset.intersection(ctx.class_sets[r])
            };
            if new_items.is_empty() {
                continue;
            }
            let new_rows = closure(ctx, &new_items);
            // Prefix-preserving check (LCM): the closure must not pull in a
            // row before r that we skipped — that closed set is generated
            // on the earlier row's branch.
            if new_rows.iter().any(|&x| x < r && rows.binary_search(&x).is_err()) {
                continue;
            }
            // Close the itemset: the upper bound is the intersection over
            // *all* closure rows, which may strictly contain `new_items`.
            let mut closed_items = BitSet::full(ctx.n_items);
            for &x in &new_rows {
                closed_items.intersect_with(ctx.class_sets[x]);
            }
            dfs(ctx, new_rows, closed_items, r + 1, budget, groups, covering, seen);
            if budget.expired() {
                return;
            }
        }
    }

    let ctx = Ctx { class_sets: &class_sets, out_sets: &out_sets, n_items, min_rows, class };
    dfs(
        &ctx,
        Vec::new(),
        BitSet::new(n_items),
        0,
        budget,
        &mut groups,
        &mut covering,
        &mut seen_closures,
    );

    // Keep only groups still referenced by some row's top-k list.
    let keep = covering.group_indices();
    let mut selected: Vec<RuleGroup> = keep.into_iter().map(|i| groups[i].clone()).collect();
    selected.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.class_support.cmp(&a.class_support))
            .then_with(|| a.items.cmp(&b.items))
    });
    selected.dedup_by(|a, b| a.items == b.items);

    TopkResult { groups: selected, outcome: budget.outcome(), nodes: budget.nodes_explored() }
}

/// Mines every class of the dataset; outcome is DNF if any class DNFs.
pub fn mine_topk_groups_all(
    data: &BoolDataset,
    params: TopkParams,
    budget: &mut Budget,
) -> (Vec<Vec<RuleGroup>>, Outcome) {
    let mut all = Vec::with_capacity(data.n_classes());
    let mut outcome = Outcome::Finished;
    for class in 0..data.n_classes() {
        let res = mine_topk_groups(data, class, params, budget);
        outcome = outcome.and(res.outcome);
        all.push(res.groups);
    }
    (all, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::car::Car;
    use microarray::fixtures::table1;

    fn mine(class: usize, k: usize, minsup: f64) -> TopkResult {
        let d = table1();
        let mut b = Budget::unlimited();
        mine_topk_groups(&d, class, TopkParams { k, minsup }, &mut b)
    }

    #[test]
    fn groups_are_closed_itemsets() {
        let d = table1();
        let res = mine(0, 10, 0.0);
        assert_eq!(res.outcome, Outcome::Finished);
        for g in &res.groups {
            // The upper bound equals the intersection of its rows' items.
            let class_rows = d.class_members(0);
            let mut inter = microarray::BitSet::full(d.n_items());
            for &r in &g.class_rows {
                inter.intersect_with(d.sample(class_rows[r]));
            }
            assert_eq!(inter.to_vec(), g.items, "group not closed: {g:?}");
        }
    }

    #[test]
    fn supports_and_confidence_match_brute_force() {
        let d = table1();
        for class in 0..2 {
            let res = mine(class, 10, 0.0);
            for g in &res.groups {
                let car = Car::new(g.items.clone(), class);
                assert_eq!(car.support(&d), g.class_support, "{g:?}");
                assert_eq!(car.total_matches(&d), g.total_support, "{g:?}");
                assert!((car.confidence(&d).unwrap() - g.confidence).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn finds_the_known_100_percent_groups() {
        // {g1,g3} (closure of rows {s1,s2}) must surface as a fully
        // confident Cancer group.
        let res = mine(0, 10, 0.0);
        let g13 = res.groups.iter().find(|g| g.items == vec![0, 2]).expect("g1,g3 group");
        assert_eq!(g13.confidence, 1.0);
        assert_eq!(g13.class_support, 2);
    }

    #[test]
    fn every_row_is_covered() {
        let d = table1();
        for class in 0..2 {
            let res = mine(class, 2, 0.0);
            let n = d.class_members(class).len();
            for r in 0..n {
                assert!(
                    res.groups.iter().any(|g| g.class_rows.contains(&r)),
                    "row {r} of class {class} uncovered"
                );
            }
        }
    }

    #[test]
    fn minsup_filters_small_groups() {
        // minsup 0.7 of 3 Cancer rows = ceil(2.1) = 3 rows minimum; the
        // only 3-row Cancer itemset is empty, so nothing qualifies.
        let res = mine(0, 10, 0.7);
        assert!(res.groups.is_empty(), "{:?}", res.groups);
        // At 0.5 (2 rows) the pairwise closures appear.
        let res = mine(0, 10, 0.5);
        assert!(!res.groups.is_empty());
        assert!(res.groups.iter().all(|g| g.class_support >= 2));
    }

    #[test]
    fn groups_sorted_by_confidence_then_support() {
        let res = mine(0, 10, 0.0);
        for w in res.groups.windows(2) {
            assert!(
                w[0].confidence > w[1].confidence
                    || (w[0].confidence == w[1].confidence
                        && w[0].class_support >= w[1].class_support)
            );
        }
    }

    #[test]
    fn budget_expiry_reports_dnf() {
        let d = table1();
        let mut b = Budget::with_nodes(1);
        let res = mine_topk_groups(&d, 0, TopkParams { k: 10, minsup: 0.0 }, &mut b);
        assert_eq!(res.outcome, Outcome::DidNotFinish);
    }

    #[test]
    fn all_classes_miner_combines_outcomes() {
        let d = table1();
        let mut b = Budget::unlimited();
        let (all, outcome) = mine_topk_groups_all(&d, TopkParams { k: 3, minsup: 0.0 }, &mut b);
        assert_eq!(all.len(), 2);
        assert_eq!(outcome, Outcome::Finished);
        assert!(!all[0].is_empty() && !all[1].is_empty());
    }

    #[test]
    fn k_limits_per_row_not_global() {
        // With k=1, each row keeps its single best group; the union can
        // still exceed 1.
        let res = mine(0, 1, 0.0);
        assert!(!res.groups.is_empty());
        for g in &res.groups {
            assert!(g.confidence > 0.0);
        }
    }
}
