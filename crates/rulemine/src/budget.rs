//! Time/node budgets for the exponential miners.
//!
//! Top-k rule-group mining and lower-bound BFS are worst-case exponential;
//! the paper runs them under a 2-hour cutoff and reports "# RCBT DNF" rows
//! and "≥" lower-bound runtimes (Tables 4 and 6). A [`Budget`] implements
//! that cutoff: miners poll it and return partial results flagged
//! [`Outcome::DidNotFinish`] when it expires.

use std::time::{Duration, Instant};

/// Whether a mining run completed within its budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The search space was exhausted.
    Finished,
    /// The budget expired first; results are partial and reported times are
    /// lower bounds (the paper's "≥" rows).
    DidNotFinish,
}

impl Outcome {
    /// True for [`Outcome::DidNotFinish`].
    pub fn dnf(self) -> bool {
        self == Outcome::DidNotFinish
    }

    /// Combines two phases: finished only if both finished.
    pub fn and(self, other: Outcome) -> Outcome {
        if self.dnf() || other.dnf() {
            Outcome::DidNotFinish
        } else {
            Outcome::Finished
        }
    }
}

/// A polling cutoff on wall-clock time and/or explored search nodes.
#[derive(Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    node_limit: Option<u64>,
    nodes: u64,
    /// Wall-clock checks are batched: the `Instant::now()` syscall is only
    /// issued every `CHECK_EVERY` nodes.
    since_check: u32,
    expired: bool,
}

const CHECK_EVERY: u32 = 1024;

impl Budget {
    /// No limits: mining always runs to completion.
    pub fn unlimited() -> Budget {
        Budget { deadline: None, node_limit: None, nodes: 0, since_check: 0, expired: false }
    }

    /// Wall-clock cutoff (the paper's 2-hour budget, scaled as needed).
    pub fn with_time(limit: Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + limit),
            node_limit: None,
            nodes: 0,
            // Check the clock on the very first tick (so sub-millisecond
            // cutoffs expire even on tiny searches), then every batch.
            since_check: CHECK_EVERY - 1,
            expired: false,
        }
    }

    /// Node-count cutoff — deterministic, used by tests.
    pub fn with_nodes(limit: u64) -> Budget {
        Budget { deadline: None, node_limit: Some(limit), nodes: 0, since_check: 0, expired: false }
    }

    /// Both cutoffs at once.
    pub fn with_time_and_nodes(limit: Duration, nodes: u64) -> Budget {
        Budget {
            deadline: Some(Instant::now() + limit),
            node_limit: Some(nodes),
            nodes: 0,
            since_check: CHECK_EVERY - 1,
            expired: false,
        }
    }

    /// Registers one explored node; returns `true` while the budget holds.
    /// Once expired it stays expired.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.expired {
            return false;
        }
        self.nodes += 1;
        if let Some(limit) = self.node_limit {
            if self.nodes > limit {
                self.expired = true;
                return false;
            }
        }
        if let Some(deadline) = self.deadline {
            self.since_check += 1;
            if self.since_check >= CHECK_EVERY {
                self.since_check = 0;
                if Instant::now() >= deadline {
                    self.expired = true;
                    return false;
                }
            }
        }
        true
    }

    /// Nodes explored so far.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes
    }

    /// True once any limit has been exceeded.
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// The outcome corresponding to the current state.
    pub fn outcome(&self) -> Outcome {
        if self.expired {
            Outcome::DidNotFinish
        } else {
            Outcome::Finished
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let mut b = Budget::unlimited();
        for _ in 0..100_000 {
            assert!(b.tick());
        }
        assert_eq!(b.outcome(), Outcome::Finished);
        assert_eq!(b.nodes_explored(), 100_000);
    }

    #[test]
    fn node_limit_expires_exactly() {
        let mut b = Budget::with_nodes(10);
        for _ in 0..10 {
            assert!(b.tick());
        }
        assert!(!b.tick());
        assert!(b.expired());
        assert_eq!(b.outcome(), Outcome::DidNotFinish);
        // Stays expired.
        assert!(!b.tick());
    }

    #[test]
    fn time_limit_expires() {
        let mut b = Budget::with_time(Duration::from_millis(0));
        // Needs CHECK_EVERY ticks before the clock is consulted.
        let mut held = 0u32;
        while b.tick() {
            held += 1;
            assert!(held < 10 * CHECK_EVERY, "budget never expired");
        }
        assert!(b.expired());
    }

    #[test]
    fn outcome_combinators() {
        use Outcome::*;
        assert_eq!(Finished.and(Finished), Finished);
        assert_eq!(Finished.and(DidNotFinish), DidNotFinish);
        assert_eq!(DidNotFinish.and(Finished), DidNotFinish);
        assert!(DidNotFinish.dnf());
        assert!(!Finished.dnf());
    }
}
