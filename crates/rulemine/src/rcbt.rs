//! RCBT — Refined Classification Based on Top-k covering rule groups
//! (Cong et al., SIGMOD 2005), the paper's baseline classifier.
//!
//! Training (as run in the paper's §6 with `support = 0.7`, `k = 10`,
//! `nl = 20`, 10 classifiers):
//!
//! 1. mine the top-k covering rule groups of every class (`topk`);
//! 2. for each group, mine `nl` lower-bound rules (`lower`) — the short
//!    rules actually matched against queries;
//! 3. build `k` classifiers: classifier `j` holds, per class, the lower
//!    bounds of each row's rank-`j` covering group (1 primary + k−1
//!    standby).
//!
//! Classification: the primary classifier scores each class by the
//! normalized sum of `confidence × support` over its matched lower-bound
//! rules; if no rule of any class matches, the next standby classifier is
//! consulted; if none ever matches, the majority training class is
//! returned (the "default classification" the paper's §5.3.2 contrasts
//! against).
//!
//! Both mining phases are budgeted; an expired budget yields
//! [`Outcome::DidNotFinish`] and a partially-trained model, mirroring the
//! paper's DNF accounting.

use crate::budget::{Budget, Outcome};
use crate::lower::mine_lower_bounds;
use crate::topk::{mine_topk_groups, RuleGroup, TopkParams};
use microarray::{BitSet, BoolDataset, ClassId, ItemId};
use serde::{Deserialize, Serialize};

/// RCBT hyper-parameters (author-suggested defaults from §6).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RcbtParams {
    /// Covering rule groups per row / number of classifiers (paper: 10).
    pub k: usize,
    /// Lower bounds mined per rule group (paper: 20; lowered to 2 under
    /// the † runs of Tables 4 and 6).
    pub nl: usize,
    /// Minimum class support fraction for Top-k mining (paper: 0.7).
    pub minsup: f64,
}

impl Default for RcbtParams {
    fn default() -> Self {
        RcbtParams { k: 10, nl: 20, minsup: 0.7 }
    }
}

/// One scoring rule: a lower bound with its group's statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScoredRule {
    items: Vec<ItemId>,
    confidence: f64,
    support: usize,
}

impl ScoredRule {
    fn matches(&self, q: &BitSet) -> bool {
        self.items.iter().all(|&g| q.contains(g))
    }
}

/// A trained RCBT model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RcbtModel {
    /// `classifiers[j][class]` = rules of standby level `j` for `class`.
    classifiers: Vec<Vec<Vec<ScoredRule>>>,
    /// Per classifier level and class: Σ conf·supp over all its rules
    /// (score normalizer).
    normalizers: Vec<Vec<f64>>,
    default_class: ClassId,
    n_classes: usize,
}

/// Outcome-carrying training result: the model plus DNF bookkeeping for the
/// two mining phases (reported separately in Tables 4/6 as "Top-k" and
/// "RCBT" columns).
#[derive(Debug)]
pub struct RcbtTraining {
    /// The (possibly partially trained) model.
    pub model: RcbtModel,
    /// Outcome of Top-k rule group mining.
    pub topk_outcome: Outcome,
    /// Outcome of lower-bound mining.
    pub lower_outcome: Outcome,
    /// Rule groups mined per class (diagnostics).
    pub groups_per_class: Vec<usize>,
}

impl RcbtTraining {
    /// Combined outcome: finished only if both phases finished.
    pub fn outcome(&self) -> Outcome {
        self.topk_outcome.and(self.lower_outcome)
    }
}

/// Trains RCBT. `topk_budget` covers rule-group mining, `lower_budget` the
/// lower-bound BFS (the phase the paper cuts off separately).
pub fn train(
    data: &BoolDataset,
    params: RcbtParams,
    topk_budget: &mut Budget,
    lower_budget: &mut Budget,
) -> RcbtTraining {
    let n_classes = data.n_classes();
    let sizes = data.class_sizes();
    let default_class =
        sizes.iter().enumerate().max_by_key(|&(_, &s)| s).map(|(c, _)| c).unwrap_or(0);

    // Phase 1: top-k covering rule groups per class.
    let mut topk_outcome = Outcome::Finished;
    let mut per_class_groups: Vec<Vec<RuleGroup>> = Vec::with_capacity(n_classes);
    for class in 0..n_classes {
        let res = mine_topk_groups(
            data,
            class,
            TopkParams { k: params.k, minsup: params.minsup },
            topk_budget,
        );
        topk_outcome = topk_outcome.and(res.outcome);
        per_class_groups.push(res.groups);
    }

    // Phase 2: lower bounds, assembled into k standby levels. Groups are
    // already sorted best-first; level j takes each class's rank-j group.
    let mut lower_outcome = Outcome::Finished;
    let mut classifiers: Vec<Vec<Vec<ScoredRule>>> = Vec::with_capacity(params.k);
    for level in 0..params.k {
        let mut per_class: Vec<Vec<ScoredRule>> = Vec::with_capacity(n_classes);
        for groups in per_class_groups.iter() {
            let mut rules = Vec::new();
            if let Some(group) = groups.get(level) {
                let lb = mine_lower_bounds(data, group, params.nl, lower_budget);
                lower_outcome = lower_outcome.and(lb.outcome);
                for items in lb.bounds {
                    rules.push(ScoredRule {
                        items,
                        confidence: group.confidence,
                        support: group.class_support,
                    });
                }
            }
            per_class.push(rules);
        }
        classifiers.push(per_class);
    }

    let normalizers = classifiers
        .iter()
        .map(|per_class| {
            per_class
                .iter()
                .map(|rules| rules.iter().map(|r| r.confidence * r.support as f64).sum::<f64>())
                .collect()
        })
        .collect();

    RcbtTraining {
        model: RcbtModel { classifiers, normalizers, default_class, n_classes },
        topk_outcome,
        lower_outcome,
        groups_per_class: per_class_groups.iter().map(Vec::len).collect(),
    }
}

impl RcbtModel {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The majority-class fallback.
    pub fn default_class(&self) -> ClassId {
        self.default_class
    }

    /// Classifies a query: primary classifier first, then standbys, then
    /// the default class.
    pub fn classify(&self, query: &BitSet) -> ClassId {
        for (level, per_class) in self.classifiers.iter().enumerate() {
            let mut best: Option<(f64, ClassId)> = None;
            for (class, rules) in per_class.iter().enumerate() {
                let raw: f64 = rules
                    .iter()
                    .filter(|r| r.matches(query))
                    .map(|r| r.confidence * r.support as f64)
                    .sum();
                if raw <= 0.0 {
                    continue;
                }
                let norm = self.normalizers[level][class];
                let score = if norm > 0.0 { raw / norm } else { 0.0 };
                if best.is_none_or(|(b, _)| score > b) {
                    best = Some((score, class));
                }
            }
            if let Some((_, class)) = best {
                return class;
            }
        }
        self.default_class
    }

    /// Classifies a batch of queries.
    pub fn classify_all(&self, queries: &[BitSet]) -> Vec<ClassId> {
        queries.iter().map(|q| self.classify(q)).collect()
    }

    /// Total number of lower-bound rules across all levels and classes.
    pub fn n_rules(&self) -> usize {
        self.classifiers.iter().flatten().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    fn train_table1(minsup: f64) -> RcbtTraining {
        let d = table1();
        let mut tb = Budget::unlimited();
        let mut lb = Budget::unlimited();
        train(&d, RcbtParams { k: 3, nl: 5, minsup }, &mut tb, &mut lb)
    }

    #[test]
    fn trains_and_finishes_on_table1() {
        let t = train_table1(0.0);
        assert_eq!(t.outcome(), Outcome::Finished);
        assert_eq!(t.model.n_classes(), 2);
        assert!(t.model.n_rules() > 0);
        assert_eq!(t.groups_per_class.len(), 2);
    }

    #[test]
    fn classifies_training_samples_correctly() {
        let d = table1();
        let t = train_table1(0.0);
        let preds = t.model.classify_all(d.samples());
        let correct = preds.iter().zip(d.labels()).filter(|(p, l)| p == l).count();
        // RCBT should get most training samples right on this tiny set.
        assert!(correct >= 4, "only {correct}/5 training samples correct: {preds:?}");
    }

    #[test]
    fn default_class_is_majority() {
        let t = train_table1(0.0);
        assert_eq!(t.model.default_class(), 0); // Cancer has 3 of 5 samples
    }

    #[test]
    fn unmatched_query_falls_back_to_default() {
        let t = train_table1(0.0);
        let empty = BitSet::new(6);
        assert_eq!(t.model.classify(&empty), 0);
    }

    #[test]
    fn section_5_4_query_agrees_with_bstc() {
        // The paper's worked query is Cancer; RCBT should agree here.
        let t = train_table1(0.0);
        let q = microarray::fixtures::section54_query();
        assert_eq!(t.model.classify(&q), 0);
    }

    #[test]
    fn expired_topk_budget_reports_dnf() {
        let d = table1();
        let mut tb = Budget::with_nodes(1);
        let mut lb = Budget::unlimited();
        let t = train(&d, RcbtParams::default(), &mut tb, &mut lb);
        assert_eq!(t.topk_outcome, Outcome::DidNotFinish);
        assert!(t.outcome().dnf());
    }

    #[test]
    fn expired_lower_budget_reports_dnf() {
        let d = table1();
        let mut tb = Budget::unlimited();
        let mut lb = Budget::with_nodes(1);
        let t = train(&d, RcbtParams { k: 3, nl: 5, minsup: 0.0 }, &mut tb, &mut lb);
        assert_eq!(t.topk_outcome, Outcome::Finished);
        assert_eq!(t.lower_outcome, Outcome::DidNotFinish);
    }

    #[test]
    fn high_minsup_prunes_cancer_rules() {
        // minsup 0.9 needs all 3 Cancer rows (closure: empty itemset,
        // filtered) but only both Healthy rows, whose closure {g3,g5} has a
        // singleton lower bound {g5}. So only Healthy carries rules: a
        // query expressing g5 goes Healthy, one expressing nothing falls
        // back to the Cancer default.
        let t = train_table1(0.9);
        assert_eq!(t.model.n_rules(), 1);
        let g5 = BitSet::from_iter(6, [4]);
        assert_eq!(t.model.classify(&g5), 1);
        assert_eq!(t.model.classify(&BitSet::new(6)), 0);
    }

    #[test]
    fn model_serializes() {
        let t = train_table1(0.0);
        let json = serde_json::to_string(&t.model).unwrap();
        let back: RcbtModel = serde_json::from_str(&json).unwrap();
        let q = microarray::fixtures::section54_query();
        assert_eq!(back.classify(&q), t.model.classify(&q));
    }
}
