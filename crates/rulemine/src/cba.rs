//! CBA — Classification Based on Associations (Liu, Hsu & Ma, KDD 1998).
//!
//! §6.1 of the BSTC paper quotes CBA's reported mean accuracy (87 %) among
//! the classifiers RCBT/BSTC outperform; we implement it so the comparison
//! can actually be run. Two phases:
//!
//! * **CBA-RG** — Apriori-style level-wise mining of class association
//!   rules with minimum support and confidence (antecedent length capped,
//!   budgeted: microarray items are dense, so candidate sets explode
//!   exactly the way the paper's scalability argument predicts);
//! * **CBA-CB** (the M1 heuristic) — sort rules by confidence, support,
//!   then antecedent length; greedily keep rules that correctly classify
//!   at least one still-uncovered training case; default to the majority
//!   class of the uncovered remainder.

use crate::budget::{Budget, Outcome};
use crate::car::Car;
use microarray::{BitSet, BoolDataset, ClassId, ItemId};
use serde::{Deserialize, Serialize};

/// CBA hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CbaParams {
    /// Minimum rule support as a fraction of all samples (CBA's classic
    /// default is 1 %; microarray items are dense so a higher value is
    /// typical here).
    pub minsup: f64,
    /// Minimum rule confidence (classic default 0.5).
    pub minconf: f64,
    /// Maximum antecedent length mined (Apriori level cap).
    pub max_len: usize,
}

impl Default for CbaParams {
    fn default() -> Self {
        CbaParams { minsup: 0.1, minconf: 0.5, max_len: 2 }
    }
}

/// One selected classifier rule.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct CbaRule {
    items: Vec<ItemId>,
    class: ClassId,
    support: usize,
    confidence: f64,
}

impl CbaRule {
    fn matches(&self, q: &BitSet) -> bool {
        self.items.iter().all(|&g| q.contains(g))
    }
}

/// A trained CBA classifier.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CbaModel {
    /// Selected rules in precedence order.
    rules: Vec<CbaRule>,
    default_class: ClassId,
    n_classes: usize,
}

/// Training result with mining outcome (rule generation is budgeted).
#[derive(Debug)]
pub struct CbaTraining {
    /// The trained model (usable even on a DNF'd, partial rule set).
    pub model: CbaModel,
    /// Whether rule generation explored its full (capped) space.
    pub outcome: Outcome,
    /// Rules generated before selection.
    pub candidate_rules: usize,
}

/// Trains CBA.
pub fn train_cba(data: &BoolDataset, params: CbaParams, budget: &mut Budget) -> CbaTraining {
    let n = data.n_samples();
    let min_count = ((params.minsup * n as f64).ceil() as usize).max(1);

    // --- CBA-RG: level-wise frequent itemsets with per-class counts. ---
    let mut rules: Vec<CbaRule> = Vec::new();
    let mut outcome = Outcome::Finished;

    // Level 1.
    let mut frontier: Vec<Vec<ItemId>> = Vec::new();
    'mining: {
        for g in 0..data.n_items() {
            if !budget.tick() {
                outcome = Outcome::DidNotFinish;
                break 'mining;
            }
            let set = vec![g];
            if total_support(data, &set) >= min_count {
                harvest(data, &set, params.minconf, &mut rules);
                frontier.push(set);
            }
        }
        // Levels 2..=max_len via prefix joins.
        for _level in 2..=params.max_len {
            let mut next: Vec<Vec<ItemId>> = Vec::new();
            let mut i = 0usize;
            while i < frontier.len() {
                let prefix = &frontier[i][..frontier[i].len() - 1];
                let mut j = i + 1;
                while j < frontier.len() && &frontier[j][..frontier[j].len() - 1] == prefix {
                    j += 1;
                }
                for a in i..j {
                    for b in a + 1..j {
                        if !budget.tick() {
                            outcome = Outcome::DidNotFinish;
                            break 'mining;
                        }
                        let mut cand = frontier[a].clone();
                        cand.push(*frontier[b].last().expect("non-empty"));
                        if total_support(data, &cand) >= min_count {
                            harvest(data, &cand, params.minconf, &mut rules);
                            next.push(cand);
                        }
                    }
                }
                i = j;
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
    }
    let candidate_rules = rules.len();

    // --- CBA-CB (M1): precedence sort, greedy coverage. ---
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.cmp(&a.support))
            .then(a.items.len().cmp(&b.items.len()))
            .then_with(|| a.items.cmp(&b.items))
    });

    let mut covered = vec![false; n];
    let mut selected: Vec<CbaRule> = Vec::new();
    for rule in rules {
        let helps = covered
            .iter()
            .enumerate()
            .any(|(s, &done)| !done && data.label(s) == rule.class && rule.matches(data.sample(s)));
        if !helps {
            continue;
        }
        for (s, done) in covered.iter_mut().enumerate() {
            if !*done && rule.matches(data.sample(s)) {
                *done = true;
            }
        }
        selected.push(rule);
        if covered.iter().all(|&c| c) {
            break;
        }
    }

    // Default class: majority among uncovered cases (all cases if covered).
    let mut hist = vec![0usize; data.n_classes()];
    let mut any_uncovered = false;
    for s in 0..n {
        if !covered[s] {
            hist[data.label(s)] += 1;
            any_uncovered = true;
        }
    }
    if !any_uncovered {
        for s in 0..n {
            hist[data.label(s)] += 1;
        }
    }
    let default_class =
        hist.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(c, _)| c).unwrap_or(0);

    CbaTraining {
        model: CbaModel { rules: selected, default_class, n_classes: data.n_classes() },
        outcome,
        candidate_rules,
    }
}

fn total_support(data: &BoolDataset, items: &[ItemId]) -> usize {
    (0..data.n_samples()).filter(|&s| items.iter().all(|&g| data.sample(s).contains(g))).count()
}

/// Emits the rules `items ⇒ class` whose confidence clears `minconf`.
fn harvest(data: &BoolDataset, items: &[ItemId], minconf: f64, out: &mut Vec<CbaRule>) {
    let mut class_counts = vec![0usize; data.n_classes()];
    let mut total = 0usize;
    for s in 0..data.n_samples() {
        if items.iter().all(|&g| data.sample(s).contains(g)) {
            class_counts[data.label(s)] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return;
    }
    for (class, &count) in class_counts.iter().enumerate() {
        let conf = count as f64 / total as f64;
        if conf >= minconf && count > 0 {
            out.push(CbaRule { items: items.to_vec(), class, support: count, confidence: conf });
        }
    }
}

impl CbaModel {
    /// First matching rule in precedence order, else the default class.
    pub fn classify(&self, query: &BitSet) -> ClassId {
        for rule in &self.rules {
            if rule.matches(query) {
                return rule.class;
            }
        }
        self.default_class
    }

    /// Classifies a batch.
    pub fn classify_all(&self, queries: &[BitSet]) -> Vec<ClassId> {
        queries.iter().map(|q| self.classify(q)).collect()
    }

    /// Number of selected rules.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// The fallback class.
    pub fn default_class(&self) -> ClassId {
        self.default_class
    }

    /// The selected rules as public [`Car`]s, in precedence order.
    pub fn rules_as_cars(&self) -> Vec<Car> {
        self.rules.iter().map(|r| Car::new(r.items.clone(), r.class)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    fn train_default(minsup: f64) -> CbaTraining {
        let d = table1();
        let mut b = Budget::unlimited();
        train_cba(&d, CbaParams { minsup, minconf: 0.5, max_len: 3 }, &mut b)
    }

    #[test]
    fn trains_and_selects_rules_on_table1() {
        let t = train_default(0.2);
        assert_eq!(t.outcome, Outcome::Finished);
        assert!(t.model.n_rules() > 0);
        assert!(t.candidate_rules >= t.model.n_rules());
    }

    #[test]
    fn classifies_training_data_well() {
        let d = table1();
        let t = train_default(0.2);
        let preds = t.model.classify_all(d.samples());
        let correct = preds.iter().zip(d.labels()).filter(|(p, l)| p == l).count();
        assert!(correct >= 4, "{correct}/5: {preds:?}");
    }

    #[test]
    fn precedence_respects_confidence() {
        let t = train_default(0.2);
        let cars = t.model.rules_as_cars();
        let d = table1();
        let confs: Vec<f64> = cars.iter().map(|c| c.confidence(&d).unwrap_or(0.0)).collect();
        for w in confs.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "{confs:?}");
        }
    }

    #[test]
    fn unmatched_query_gets_default() {
        let d = table1();
        let t = train_default(0.2);
        let empty = BitSet::new(6);
        assert_eq!(t.model.classify(&empty), t.model.default_class());
        let _ = d;
    }

    #[test]
    fn budget_expiry_reports_dnf_but_model_usable() {
        let d = table1();
        let mut b = Budget::with_nodes(2);
        let t = train_cba(&d, CbaParams::default(), &mut b);
        assert_eq!(t.outcome, Outcome::DidNotFinish);
        // Still classifies (possibly all-default).
        let c = t.model.classify(d.sample(0));
        assert!(c < 2);
    }

    #[test]
    fn high_minsup_yields_few_rules() {
        let lo = train_default(0.2);
        let hi = train_default(0.8);
        assert!(hi.candidate_rules <= lo.candidate_rules);
    }

    #[test]
    fn max_len_caps_antecedents() {
        let d = table1();
        let mut b = Budget::unlimited();
        let t = train_cba(&d, CbaParams { minsup: 0.2, minconf: 0.5, max_len: 1 }, &mut b);
        for car in t.model.rules_as_cars() {
            assert_eq!(car.items.len(), 1);
        }
        let _ = d;
    }

    #[test]
    fn serializes() {
        let d = table1();
        let t = train_default(0.2);
        let back: CbaModel =
            serde_json::from_str(&serde_json::to_string(&t.model).unwrap()).unwrap();
        for s in 0..d.n_samples() {
            assert_eq!(back.classify(d.sample(s)), t.model.classify(d.sample(s)));
        }
    }
}
