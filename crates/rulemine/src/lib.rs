//! # rulemine — the conjunctive-association-rule baseline
//!
//! The BSTC paper benchmarks against the Top-k covering rule group miner
//! and the RCBT classifier of Cong et al. (SIGMOD 2005) — the
//! state-of-the-art CAR pipeline whose pruned *exponential* searches BSTC
//! set out to replace. This crate reimplements that pipeline from scratch:
//!
//! * [`car`] — conjunctive association rules with the §2 support and
//!   confidence definitions;
//! * [`topk`] — top-k covering rule group mining by row enumeration over
//!   class-sample subsets (closed itemsets, LCM-style prefix-preserving
//!   extension, minsup and confidence-bound pruning);
//! * [`lower`] — lower-bound mining: the pruned BFS over subsets of a rule
//!   group's antecedent that makes RCBT blow up on wide upper bounds
//!   (§6.2.3);
//! * [`rcbt`] — the k-classifier committee (1 primary + k−1 standby)
//!   scoring classes by normalized Σ confidence·support of matched lower
//!   bounds;
//! * [`budget`] — the wall-clock/node cutoffs behind the paper's
//!   "# RCBT DNF" and "≥ runtime" reporting;
//! * [`cba`] — the CBA classifier (Liu et al. 1998) whose reported
//!   accuracy §6.1 quotes, for completeness of the comparison set;
//! * [`toprules`] — the TOP-RULES border of all minimal 100 %-confident
//!   CARs (Li et al. 1999), the §7 related work closest to BARs — used to
//!   cross-validate the BST representation (Theorem 2);
//! * [`hitting`] — the minimal-hitting-set enumerator shared by the
//!   lower-bound and TOP-RULES miners.
//!
//! Everything here is deliberately the *expensive* path; see the `bstc`
//! crate for the polynomial alternative.
//!
//! ```
//! use microarray::fixtures::table1;
//! use rulemine::{mine_topk_groups, Budget, TopkParams};
//!
//! let data = table1();
//! let mut budget = Budget::unlimited();
//! let res = mine_topk_groups(&data, 0, TopkParams { k: 10, minsup: 0.0 }, &mut budget);
//! // The closed group {g1, g3} ⇒ Cancer is mined with confidence 1.
//! assert!(res.groups.iter().any(|g| g.items == vec![0, 2] && g.confidence == 1.0));
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod car;
pub mod cba;
pub mod hitting;
pub mod lower;
pub mod rcbt;
pub mod topk;
pub mod toprules;

pub use budget::{Budget, Outcome};
pub use car::Car;
pub use cba::{train_cba, CbaModel, CbaParams, CbaTraining};
pub use lower::{mine_lower_bounds, LowerBounds};
pub use rcbt::{train as train_rcbt, RcbtModel, RcbtParams, RcbtTraining};
pub use topk::{mine_topk_groups, mine_topk_groups_all, RuleGroup, TopkParams, TopkResult};
pub use toprules::{mine_top_rules, TopRules};
