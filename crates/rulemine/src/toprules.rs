//! TOP-RULES — mining all 100 %-confident CARs without support thresholds
//! (Li et al., PKDD 1999), the related work §7 calls "perhaps the work
//! closest to utilizing 100 % BARs".
//!
//! A conjunction `A ⇒ C` is 100 % confident iff some class-C sample
//! expresses all of `A` and **no** other-class sample does. The compact
//! representation is the *border*: the minimal such `A`s — every superset
//! of a minimal rule that stays inside one supporting sample is also
//! 100 % confident. For a supporting sample `c`, the minimal rules are
//! exactly the minimal hitting sets of `{items(c) − items(h)}` over all
//! out-of-class samples `h` — the same transversal structure as RCBT's
//! lower bounds, solved by the shared [`crate::hitting`] enumerator.
//!
//! The BSTC paper proves (§4.3, Theorem 2) that BSTs contain all of this
//! information; the workspace's property tests cross-validate the two
//! representations against each other.

use crate::budget::{Budget, Outcome};
use crate::car::Car;
use crate::hitting::minimal_hitting_sets;
use microarray::{BoolDataset, ClassId, ItemId};

/// Result of a TOP-RULES run for one class.
#[derive(Clone, Debug)]
pub struct TopRules {
    /// The minimal 100 %-confident CARs (the border), deduplicated.
    pub rules: Vec<Car>,
    /// Whether every supporting sample's search completed.
    pub outcome: Outcome,
}

/// Mines the border of 100 %-confident CARs for `class`.
///
/// `max_len` caps antecedent length (the emerging-pattern literature's
/// practical cap — borders are short when classes are separable at all);
/// `per_sample_limit` caps rules kept per supporting sample.
pub fn mine_top_rules(
    data: &BoolDataset,
    class: ClassId,
    max_len: usize,
    per_sample_limit: usize,
    budget: &mut Budget,
) -> TopRules {
    let out: Vec<ItemId> = (0..data.n_samples()).filter(|&s| data.label(s) != class).collect();
    let mut rules: Vec<Car> = Vec::new();
    let mut outcome = Outcome::Finished;

    for c in data.class_members(class) {
        let items: Vec<ItemId> = data.sample(c).to_vec();
        if items.is_empty() {
            continue;
        }
        // D_h = positions (into `items`) of items h lacks. A rule must
        // contain one of them for every h to exclude all out samples.
        let diffs: Vec<Vec<usize>> = out
            .iter()
            .map(|&h| {
                (0..items.len())
                    .filter(|&i| !data.sample(h).contains(items[i]))
                    .collect::<Vec<usize>>()
            })
            .collect();
        let res = minimal_hitting_sets(&diffs, max_len.min(items.len()), per_sample_limit, budget);
        if !res.finished {
            outcome = Outcome::DidNotFinish;
        }
        for pos in res.sets {
            if pos.is_empty() {
                // No out samples at all: the border is the empty rule;
                // represent it by each singleton instead (a usable CAR
                // needs an antecedent).
                for &g in items.iter().take(per_sample_limit) {
                    let car = Car::new(vec![g], class);
                    if !rules.contains(&car) {
                        rules.push(car);
                    }
                }
                continue;
            }
            let car = Car::new(pos.into_iter().map(|i| items[i]).collect(), class);
            if !rules.contains(&car) {
                rules.push(car);
            }
        }
        if outcome.dnf() {
            break;
        }
    }
    rules.sort_by(|a, b| a.items.len().cmp(&b.items.len()).then_with(|| a.items.cmp(&b.items)));
    TopRules { rules, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    fn mine(class: usize) -> TopRules {
        let d = table1();
        let mut b = Budget::unlimited();
        mine_top_rules(&d, class, 4, 50, &mut b)
    }

    #[test]
    fn all_mined_rules_are_100_percent_confident() {
        let d = table1();
        for class in 0..2 {
            let r = mine(class);
            assert_eq!(r.outcome, Outcome::Finished);
            assert!(!r.rules.is_empty());
            for car in &r.rules {
                assert_eq!(car.confidence(&d), Some(1.0), "{car:?}");
                assert!(car.support(&d) >= 1);
            }
        }
    }

    #[test]
    fn rules_are_minimal() {
        // Removing any item from a mined rule breaks 100% confidence (or
        // empties the rule).
        let d = table1();
        for class in 0..2 {
            for car in mine(class).rules {
                for skip in 0..car.items.len() {
                    let reduced: Vec<usize> = car
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &g)| g)
                        .collect();
                    if reduced.is_empty() {
                        continue;
                    }
                    let sub = Car::new(reduced, class);
                    assert_ne!(sub.confidence(&d), Some(1.0), "{car:?} not minimal");
                }
            }
        }
    }

    #[test]
    fn known_cancer_border_members() {
        // g1 alone is Cancer-pure (minimal); {g1,g3} is 100% confident but
        // NOT minimal (g1 ⊂ it), so it must not appear in the border.
        let r = mine(0);
        assert!(r.rules.contains(&Car::new(vec![0], 0)), "{:?}", r.rules);
        assert!(!r.rules.contains(&Car::new(vec![0, 2], 0)));
    }

    #[test]
    fn healthy_border_contains_g5_g6() {
        // §1's motivating rule g5,g6 ⇒ Healthy: 100% confident; minimal
        // because g5 and g6 alone both appear in Cancer samples.
        let r = mine(1);
        assert!(r.rules.contains(&Car::new(vec![4, 5], 1)), "{:?}", r.rules);
    }

    #[test]
    fn border_is_complete_up_to_max_len() {
        // Brute force: every minimal 100%-confident CAR of length ≤ 3 must
        // be in the mined border.
        let d = table1();
        for class in 0..2 {
            let mined = mine(class).rules;
            let is_conf1 = |items: &[usize]| {
                let car = Car::new(items.to_vec(), class);
                car.confidence(&d) == Some(1.0)
            };
            for a in 0..6 {
                for b in a..6 {
                    for c in b..6 {
                        let mut items = vec![a, b, c];
                        items.dedup();
                        if !is_conf1(&items) {
                            continue;
                        }
                        // Minimal? every proper non-empty subset below 100%.
                        let minimal = (0..items.len()).all(|skip| {
                            let sub: Vec<usize> = items
                                .iter()
                                .enumerate()
                                .filter(|&(i, _)| i != skip)
                                .map(|(_, &g)| g)
                                .collect();
                            sub.is_empty() || !is_conf1(&sub)
                        });
                        if minimal {
                            assert!(
                                mined.contains(&Car::new(items.clone(), class)),
                                "missing border rule {items:?} for class {class}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn budget_expiry_is_reported() {
        let d = table1();
        let mut b = Budget::with_nodes(1);
        let r = mine_top_rules(&d, 0, 4, 50, &mut b);
        assert_eq!(r.outcome, Outcome::DidNotFinish);
    }
}
