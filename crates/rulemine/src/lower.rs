//! Lower-bound rule mining for RCBT.
//!
//! Before a rule group can be used for classification, RCBT mines `nl`
//! *lower bounds* per group: minimal subsets of the upper bound's items
//! whose antecedent support set (over the whole dataset) equals the
//! group's. Per the paper (§6.2.3) this search over "the subset space of
//! the rule group's upper bound antecedent genes" is exponential in the
//! antecedent width, which is what makes RCBT DNF on the prostate and
//! ovarian datasets (upper bounds with > 400 genes).
//!
//! Structurally, a subset `B ⊆ upper` has the group's exact support iff it
//! *excludes* every sample that is outside the group's support set, i.e.
//! iff `B` hits, for every such sample `r`, the set `D_r` of upper-bound
//! items `r` does not express. Lower bounds are therefore the **minimal
//! hitting sets** of `{D_r}`. We enumerate them smallest-first by
//! iterative-deepening DFS that branches only on the items of an uncovered
//! `D_r` (with the standard forbidden-set trick to avoid duplicates), up
//! to [`MAX_LEVEL`] items — lower bounds are short in practice, and the
//! level cap is what an implementation must do to ever terminate on wide
//! upper bounds. The whole search polls a [`Budget`]; expiry yields
//! partial results flagged DNF, mirroring the paper's accounting.

use crate::budget::{Budget, Outcome};
use crate::topk::RuleGroup;
use microarray::{BitSet, BoolDataset, ItemId};

/// Largest lower-bound antecedent searched for. Rule-group lower bounds
/// are minimal by definition and short in practice; capping the level is
/// what makes the search terminate at all on wide upper bounds (an
/// uncapped search would have to exhaust `2^width` subsets to prove
/// completeness).
pub const MAX_LEVEL: usize = 6;

/// Result of a lower-bound search.
#[derive(Clone, Debug)]
pub struct LowerBounds {
    /// Minimal item subsets (each ascending) with the group's exact
    /// support set; at most `nl` of them, smallest-first.
    pub bounds: Vec<Vec<ItemId>>,
    /// Whether the search completed (all levels up to [`MAX_LEVEL`]
    /// explored, or `nl` bounds found) within budget.
    pub outcome: Outcome,
}

/// Support signature of an itemset: the set of *all* samples containing it.
fn support_set(data: &BoolDataset, items: &[ItemId]) -> BitSet {
    let mut s = BitSet::new(data.n_samples());
    for r in 0..data.n_samples() {
        if items.iter().all(|&g| data.sample(r).contains(g)) {
            s.insert(r);
        }
    }
    s
}

/// Mines up to `nl` lower bounds of `group`, smallest-first.
pub fn mine_lower_bounds(
    data: &BoolDataset,
    group: &RuleGroup,
    nl: usize,
    budget: &mut Budget,
) -> LowerBounds {
    let upper = &group.items;
    if nl == 0 || upper.is_empty() {
        return LowerBounds { bounds: Vec::new(), outcome: budget.outcome() };
    }
    let target = support_set(data, upper);

    // D_r for every sample outside the target support: the upper-bound
    // item *positions* the sample does not express. B ⊆ upper has support
    // == target iff B hits every D_r.
    let diffs: Vec<Vec<usize>> = (0..data.n_samples())
        .filter(|&r| !target.contains(r))
        .map(|r| {
            (0..upper.len()).filter(|&i| !data.sample(r).contains(upper[i])).collect::<Vec<usize>>()
        })
        .collect();

    // No sample to exclude: every non-empty subset already has the
    // target's support, so the singletons are the minimal bounds.
    if diffs.is_empty() {
        let bounds = upper.iter().take(nl).map(|&g| vec![g]).collect();
        return LowerBounds { bounds, outcome: budget.outcome() };
    }

    let mut b =
        crate::hitting::minimal_hitting_sets(&diffs, MAX_LEVEL.min(upper.len()), nl, budget);
    let bounds = b.sets.drain(..).map(|pos| pos.into_iter().map(|i| upper[i]).collect()).collect();
    LowerBounds {
        bounds,
        outcome: if b.finished { budget.outcome() } else { Outcome::DidNotFinish },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::{mine_topk_groups, TopkParams};
    use microarray::fixtures::table1;

    fn group_with_items(items: &[usize]) -> RuleGroup {
        let d = table1();
        let mut b = Budget::unlimited();
        let res = mine_topk_groups(&d, 0, TopkParams { k: 10, minsup: 0.0 }, &mut b);
        res.groups
            .iter()
            .find(|g| g.items == items)
            .unwrap_or_else(|| panic!("group {items:?} not mined"))
            .clone()
    }

    #[test]
    fn lower_bounds_of_s2_group() {
        // The {s2} Cancer group has upper bound {g1,g3,g6}. Under CAR
        // (whole-dataset) support semantics its only lower bound is
        // {g1,g6}: {g3,g6} also matches Healthy s5, so it lands in a
        // different rule group. (The paper's §4.2 lists {g3,g6} as a lower
        // bound of the *boolean* group, whose exclusion clauses exclude s5
        // — that generalization lives in the `bstc` crate.)
        let d = table1();
        let g = group_with_items(&[0, 2, 5]);
        let mut b = Budget::unlimited();
        let lb = mine_lower_bounds(&d, &g, 20, &mut b);
        assert_eq!(lb.outcome, Outcome::Finished);
        assert_eq!(lb.bounds, vec![vec![0, 5]]);
    }

    #[test]
    fn lower_bounds_have_exact_support() {
        let d = table1();
        for items in [vec![0, 2], vec![0usize, 2, 5]] {
            let g = group_with_items(&items);
            let mut b = Budget::unlimited();
            let lb = mine_lower_bounds(&d, &g, 20, &mut b);
            let target = support_set(&d, &g.items);
            assert!(!lb.bounds.is_empty());
            for bound in &lb.bounds {
                assert_eq!(support_set(&d, bound), target, "{bound:?}");
            }
        }
    }

    #[test]
    fn lower_bounds_are_minimal() {
        let d = table1();
        let g = group_with_items(&[0, 2, 5]);
        let mut b = Budget::unlimited();
        let lb = mine_lower_bounds(&d, &g, 20, &mut b);
        let target = support_set(&d, &g.items);
        for bound in &lb.bounds {
            for skip in 0..bound.len() {
                let reduced: Vec<usize> =
                    bound.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, &g)| g).collect();
                if reduced.is_empty() {
                    continue;
                }
                assert_ne!(support_set(&d, &reduced), target, "{bound:?} not minimal");
            }
        }
    }

    #[test]
    fn singleton_lower_bound_found() {
        // {g1,g3}'s whole-dataset support is {s1,s2}, which equals g1's
        // alone — g1 is a singleton lower bound. g3 alone also matches
        // s4/s5, so it is not.
        let d = table1();
        let g = group_with_items(&[0, 2]);
        let mut b = Budget::unlimited();
        let lb = mine_lower_bounds(&d, &g, 20, &mut b);
        assert!(lb.bounds.contains(&vec![0]), "{:?}", lb.bounds);
        assert!(!lb.bounds.contains(&vec![2]), "{:?}", lb.bounds);
    }

    #[test]
    fn bounds_are_smallest_first() {
        let d = table1();
        let g = group_with_items(&[0, 2, 5]);
        let mut b = Budget::unlimited();
        let lb = mine_lower_bounds(&d, &g, 20, &mut b);
        for w in lb.bounds.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn nl_caps_the_result() {
        let d = table1();
        let g = group_with_items(&[0, 2]);
        let mut b = Budget::unlimited();
        let lb = mine_lower_bounds(&d, &g, 1, &mut b);
        assert_eq!(lb.bounds.len(), 1);
    }

    #[test]
    fn budget_expiry_is_reported() {
        let d = table1();
        let g = group_with_items(&[0, 2, 5]);
        let mut b = Budget::with_nodes(1);
        let lb = mine_lower_bounds(&d, &g, 20, &mut b);
        assert_eq!(lb.outcome, Outcome::DidNotFinish);
    }

    #[test]
    fn no_excluded_samples_yields_singletons() {
        // A group whose itemset is contained in every sample: all
        // singletons are bounds.
        let d = table1();
        // g3 is expressed by s1,s2,s4,s5 — not everyone — so craft the
        // universal case from the Healthy class where {g3,g5} ⊆ s1,s4,s5
        // but not s2/s3… instead simply test the code path with a
        // synthetic group over an item in every sample.
        use microarray::{BitSet, BoolDataset};
        let items = vec!["u".to_string(), "v".to_string()];
        let classes = vec!["a".to_string(), "b".to_string()];
        let samples = vec![
            BitSet::from_iter(2, [0, 1]),
            BitSet::from_iter(2, [0, 1]),
            BitSet::from_iter(2, [0]),
        ];
        let dd = BoolDataset::new(items, classes, samples, vec![0, 0, 1]).unwrap();
        let g = RuleGroup {
            class: 0,
            items: vec![0],
            class_rows: vec![0, 1],
            class_support: 2,
            total_support: 3,
            confidence: 2.0 / 3.0,
        };
        let mut b = Budget::unlimited();
        let lb = mine_lower_bounds(&dd, &g, 5, &mut b);
        assert_eq!(lb.bounds, vec![vec![0]]);
        let _ = d;
    }
}
