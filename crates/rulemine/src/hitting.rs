//! Minimal-hitting-set enumeration — the combinatorial core shared by
//! lower-bound mining ([`crate::lower`]) and the TOP-RULES 100 %-confident
//! CAR miner ([`crate::toprules`]).
//!
//! Given a family of "difference" sets `D_1 … D_m` over item positions, a
//! hitting set picks at least one element from every `D_i`; the *minimal*
//! ones are enumerated smallest-first by iterative-deepening DFS that
//! branches only on the elements of an uncovered set (smallest first),
//! with the standard forbidden-element trick preventing duplicates.

use crate::budget::Budget;

/// Result of an enumeration run.
pub struct HittingSets {
    /// Minimal hitting sets (each sorted ascending), smallest-first.
    pub sets: Vec<Vec<usize>>,
    /// False when the budget expired mid-search (results are partial).
    pub finished: bool,
}

/// Enumerates up to `limit` minimal hitting sets of `diffs` with at most
/// `max_len` elements each.
///
/// An empty family is hit by the empty set: the result is one empty set
/// (callers decide what that means). A family containing an empty `D_i`
/// is unhittable: the result is no sets.
pub fn minimal_hitting_sets(
    diffs: &[Vec<usize>],
    max_len: usize,
    limit: usize,
    budget: &mut Budget,
) -> HittingSets {
    if limit == 0 {
        return HittingSets { sets: Vec::new(), finished: true };
    }
    if diffs.is_empty() {
        return HittingSets { sets: vec![Vec::new()], finished: true };
    }
    if diffs.iter().any(Vec::is_empty) {
        return HittingSets { sets: Vec::new(), finished: true };
    }

    let mut sets: Vec<Vec<usize>> = Vec::new();
    for depth in 1..=max_len {
        let mut chosen = Vec::new();
        let mut forbidden = Vec::new();
        if !dfs(diffs, depth, &mut chosen, &mut forbidden, &mut sets, limit, budget) {
            return HittingSets { sets, finished: false };
        }
        if sets.len() >= limit {
            break;
        }
    }
    HittingSets { sets, finished: true }
}

/// Depth-limited DFS; returns `false` on budget expiry.
fn dfs(
    diffs: &[Vec<usize>],
    depth_left: usize,
    chosen: &mut Vec<usize>,
    forbidden: &mut Vec<usize>,
    sets: &mut Vec<Vec<usize>>,
    limit: usize,
    budget: &mut Budget,
) -> bool {
    if !budget.tick() {
        return false;
    }
    // Smallest uncovered difference set drives the branching.
    let mut pick: Option<&Vec<usize>> = None;
    for d in diffs {
        if d.iter().any(|i| chosen.contains(i)) {
            continue;
        }
        if pick.is_none_or(|p| d.len() < p.len()) {
            pick = Some(d);
        }
    }
    let Some(d) = pick else {
        // Covered: keep iff minimal (each element hits some set privately).
        let minimal = chosen.iter().all(|&i| {
            diffs
                .iter()
                .any(|d| d.contains(&i) && d.iter().filter(|j| chosen.contains(j)).count() == 1)
        });
        if minimal {
            let mut s = chosen.clone();
            s.sort_unstable();
            if !sets.contains(&s) {
                sets.push(s);
            }
        }
        return true;
    };
    if depth_left == 0 {
        return true;
    }
    let mark = forbidden.len();
    for &i in d {
        if forbidden.contains(&i) {
            continue;
        }
        chosen.push(i);
        let ok = dfs(diffs, depth_left - 1, chosen, forbidden, sets, limit, budget);
        chosen.pop();
        if !ok {
            return false;
        }
        if sets.len() >= limit {
            forbidden.truncate(mark);
            return true;
        }
        forbidden.push(i);
    }
    forbidden.truncate(mark);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(diffs: &[Vec<usize>], max_len: usize, limit: usize) -> Vec<Vec<usize>> {
        let mut b = Budget::unlimited();
        let r = minimal_hitting_sets(diffs, max_len, limit, &mut b);
        assert!(r.finished);
        r.sets
    }

    #[test]
    fn empty_family_is_hit_by_empty_set() {
        assert_eq!(run(&[], 3, 10), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn unhittable_family_yields_nothing() {
        assert!(run(&[vec![1, 2], vec![]], 3, 10).is_empty());
    }

    #[test]
    fn single_set_yields_its_singletons() {
        let mut sets = run(&[vec![3, 1, 2]], 3, 10);
        sets.sort();
        assert_eq!(sets, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn shared_element_is_the_unique_minimal_set() {
        // {1,2} and {2,3}: {2} hits both; {1,3} is the other minimal.
        let mut sets = run(&[vec![1, 2], vec![2, 3]], 3, 10);
        sets.sort();
        assert_eq!(sets, vec![vec![1, 3], vec![2]]);
    }

    #[test]
    fn minimality_filters_supersets() {
        // Any set containing 2 other than {2} itself is non-minimal here.
        let sets = run(&[vec![2], vec![2, 5]], 3, 10);
        assert_eq!(sets, vec![vec![2]]);
    }

    #[test]
    fn limit_caps_output() {
        let sets = run(&[vec![1, 2, 3, 4, 5]], 2, 2);
        assert_eq!(sets.len(), 2);
    }

    #[test]
    fn max_len_caps_depth() {
        // Three disjoint sets need 3 elements; max_len 2 finds nothing.
        let sets = run(&[vec![1], vec![2], vec![3]], 2, 10);
        assert!(sets.is_empty());
        let sets = run(&[vec![1], vec![2], vec![3]], 3, 10);
        assert_eq!(sets, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn budget_expiry_reports_unfinished() {
        let mut b = Budget::with_nodes(1);
        let r = minimal_hitting_sets(&[vec![1, 2], vec![3, 4]], 3, 10, &mut b);
        assert!(!r.finished);
    }

    #[test]
    fn classic_transversal_example() {
        // D = {{1,2},{1,3},{2,3}}: minimal transversals are all pairs.
        let mut sets = run(&[vec![1, 2], vec![1, 3], vec![2, 3]], 3, 10);
        sets.sort();
        assert_eq!(sets, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
    }
}
