//! Conjunctive association rules (CARs) — the primitive of the baseline
//! pipeline (§2 of the paper, after Agrawal et al.).

use microarray::{BitSet, BoolDataset, ClassId, ItemId};
use serde::{Deserialize, Serialize};

/// A conjunctive association rule `g₁, …, g_r ⇒ C_n`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Car {
    /// Antecedent items, ascending.
    pub items: Vec<ItemId>,
    /// Consequent class.
    pub class: ClassId,
}

impl Car {
    /// Creates a CAR, normalizing item order.
    pub fn new(mut items: Vec<ItemId>, class: ClassId) -> Car {
        items.sort_unstable();
        items.dedup();
        Car { items, class }
    }

    /// True if `sample` expresses every antecedent item.
    #[inline]
    pub fn matches(&self, sample: &BitSet) -> bool {
        self.items.iter().all(|&g| sample.contains(g))
    }

    /// Support (§2): number of *consequent-class* samples matching the
    /// antecedent.
    pub fn support(&self, data: &BoolDataset) -> usize {
        (0..data.n_samples())
            .filter(|&s| data.label(s) == self.class && self.matches(data.sample(s)))
            .count()
    }

    /// Number of samples of *any* class matching the antecedent.
    pub fn total_matches(&self, data: &BoolDataset) -> usize {
        (0..data.n_samples()).filter(|&s| self.matches(data.sample(s))).count()
    }

    /// Confidence (§2): `support / total_matches`; `None` when nothing
    /// matches.
    pub fn confidence(&self, data: &BoolDataset) -> Option<f64> {
        let total = self.total_matches(data);
        if total == 0 {
            None
        } else {
            Some(self.support(data) as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microarray::fixtures::table1;

    #[test]
    fn running_example_car_g1_g3() {
        // §2: supp[g1,g3 ⇒ Cancer] = 2, confidence 1.
        let d = table1();
        let car = Car::new(vec![2, 0], 0); // order normalized
        assert_eq!(car.items, vec![0, 2]);
        assert_eq!(car.support(&d), 2);
        assert_eq!(car.confidence(&d), Some(1.0));
    }

    #[test]
    fn g5_g6_implies_healthy() {
        // §1: only s5 expresses both g5 and g6.
        let d = table1();
        let car = Car::new(vec![4, 5], 1);
        assert_eq!(car.support(&d), 1);
        assert_eq!(car.confidence(&d), Some(1.0));
    }

    #[test]
    fn low_confidence_car() {
        // g3 ⇒ Cancer matches s1,s2 (Cancer) and s4,s5 (Healthy): conf 1/2.
        let d = table1();
        let car = Car::new(vec![2], 0);
        assert_eq!(car.support(&d), 2);
        assert_eq!(car.total_matches(&d), 4);
        assert_eq!(car.confidence(&d), Some(0.5));
    }

    #[test]
    fn empty_antecedent_matches_everything() {
        let d = table1();
        let car = Car::new(vec![], 0);
        assert_eq!(car.total_matches(&d), 5);
        assert_eq!(car.support(&d), 3);
    }

    #[test]
    fn unmatched_car_confidence_is_none() {
        let d = table1();
        let car = Car::new(vec![0, 1, 2, 3, 4, 5], 0);
        assert_eq!(car.confidence(&d), None);
    }

    #[test]
    fn duplicate_items_are_deduped() {
        let car = Car::new(vec![3, 3, 1], 0);
        assert_eq!(car.items, vec![1, 3]);
    }
}
